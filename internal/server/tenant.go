// tenant.go isolates clients from each other. Every request runs under a
// tenant (named by the X-Sqlciv-Tenant header; unnamed requests share the
// default tenant) with two independent protections:
//
//   - an in-flight cap: at most MaxInFlight of the tenant's jobs may be
//     queued or running at once — submissions past the cap get 429 without
//     consuming a queue slot, so one abusive client cannot fill the bounded
//     queue and starve the fleet;
//   - a budget ceiling: every limit in the tenant's budget.Limits clamps
//     the request's own budget (effective = min of the two nonzero values),
//     so an oversized app degrades soundly to analysis-incomplete findings
//     (VerdictUnknown) inside the tenant's own allowance instead of
//     monopolizing a worker.
//
// Budget state is strictly per-request (each analysis unit meters its own
// *budget.Budget), so there is no cross-tenant bleed by construction; the
// soak test asserts it anyway.
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"sqlciv/internal/budget"
)

// Tenant configures one client class.
type Tenant struct {
	// Limits is the tenant's budget ceiling; the zero value is unlimited.
	Limits budget.Limits
	// MaxInFlight caps the tenant's queued+running jobs; 0 means no cap.
	MaxInFlight int
}

// TenantStats is one tenant's counter snapshot, served on /debug/server.
type TenantStats struct {
	InFlight int64 `json:"in_flight"`
	// Jobs counts accepted submissions (sync and async).
	Jobs int64 `json:"jobs"`
	// Rejected counts submissions refused at the tenant's in-flight cap
	// (queue-full rejections are server-wide, not charged to a tenant).
	Rejected int64 `json:"rejected"`
	// BudgetTrips counts analysis units (pages or hotspots) that degraded
	// to VerdictUnknown under this tenant's runs.
	BudgetTrips int64 `json:"budget_trips"`
	// Findings totals findings returned to this tenant.
	Findings int64 `json:"findings"`
	// Clamped counts requests whose budget the tenant ceiling tightened
	// (the request asked for more than — or left unlimited what — the
	// ceiling allows).
	Clamped int64 `json:"clamped"`
}

// tenantState is the live accounting for one tenant.
type tenantState struct {
	cfg         Tenant
	inFlight    atomic.Int64
	jobs        atomic.Int64
	rejected    atomic.Int64
	budgetTrips atomic.Int64
	findings    atomic.Int64
	clamped     atomic.Int64
}

func (t *tenantState) stats() TenantStats {
	return TenantStats{
		InFlight:    t.inFlight.Load(),
		Jobs:        t.jobs.Load(),
		Rejected:    t.rejected.Load(),
		BudgetTrips: t.budgetTrips.Load(),
		Findings:    t.findings.Load(),
		Clamped:     t.clamped.Load(),
	}
}

// tenants is the registry: named tenants come from the server config,
// unknown names lazily inherit the default tenant's configuration (so each
// client still gets its own in-flight cap and counters).
type tenants struct {
	def Tenant
	mu  sync.Mutex
	m   map[string]*tenantState
}

func newTenants(def Tenant, named map[string]Tenant) *tenants {
	ts := &tenants{def: def, m: map[string]*tenantState{}}
	for name, cfg := range named {
		ts.m[name] = &tenantState{cfg: cfg}
	}
	return ts
}

// DefaultTenantName is the tenant unnamed requests run under.
const DefaultTenantName = "default"

func (ts *tenants) get(name string) *tenantState {
	if name == "" {
		name = DefaultTenantName
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.m[name]
	if !ok {
		st = &tenantState{cfg: ts.def}
		ts.m[name] = st
	}
	return st
}

// acquire reserves one in-flight slot, failing when the cap is reached.
// The matching release runs when the job finishes (or is rejected by the
// queue after the reservation).
func (t *tenantState) acquire() bool {
	if max := t.cfg.MaxInFlight; max > 0 {
		if t.inFlight.Add(1) > int64(max) {
			t.inFlight.Add(-1)
			t.rejected.Add(1)
			return false
		}
	} else {
		t.inFlight.Add(1)
	}
	return true
}

func (t *tenantState) release() { t.inFlight.Add(-1) }

// snapshot renders every tenant's stats keyed by name.
func (ts *tenants) snapshot() map[string]TenantStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make(map[string]TenantStats, len(ts.m))
	for name, st := range ts.m {
		out[name] = st.stats()
	}
	return out
}

// clampLimits combines the request budget with the tenant ceiling: for each
// limit the effective value is the smaller nonzero one (zero = unlimited on
// both sides). A tenant can tighten its own requests but never exceed its
// ceiling.
func clampLimits(req, ceiling budget.Limits) budget.Limits {
	return budget.Limits{
		Timeout:        minNonzeroDur(req.Timeout, ceiling.Timeout),
		HotspotTimeout: minNonzeroDur(req.HotspotTimeout, ceiling.HotspotTimeout),
		MaxSteps:       minNonzero(req.MaxSteps, ceiling.MaxSteps),
		MaxMemBytes:    minNonzero(req.MaxMemBytes, ceiling.MaxMemBytes),
	}
}

func minNonzero(a, b int64) int64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	}
	return b
}

func minNonzeroDur(a, b time.Duration) time.Duration {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	}
	return b
}

// bench_test.go measures the daemon's serving throughput: full HTTP+JSON
// round trips through a warm resident server, which is the steady state a
// fleet of CI clients sees. `make bench-server` records the results (the
// warm-hit-rate and served-p99 custom metrics, plus each run's full metrics
// snapshot) to BENCH_server.json via cmd/benchjson; the EXPERIMENTS.md
// "analysis as a service" table comes from that file.
package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"

	"sqlciv"
	"sqlciv/internal/corpus"
	"sqlciv/internal/server"
)

// benchService starts a warm server: every benchmark app is analyzed once
// cold so the measured loop sees only the amortized path.
func benchService(b *testing.B, apps []*corpus.App) (*sqlciv.Client, *server.Server) {
	b.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	client := sqlciv.NewServiceClient(ts.URL)
	for _, app := range apps {
		if _, err := client.Analyze(context.Background(),
			&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries}); err != nil {
			b.Fatalf("prewarm %s: %v", app.Name, err)
		}
	}
	return client, srv
}

// reportServed turns the server's own telemetry into benchmark output: the
// served p99 over /v1/analyze becomes a custom metric, and the full metrics
// snapshot is queued as a "benchsnap <name> <json>" line that cmd/benchjson
// records under "snapshots" in BENCH_server.json. The lines are printed
// from TestMain after every benchmark has finished — printing mid-run would
// interleave with the harness's partially written result line and corrupt
// the stream benchjson parses.
func reportServed(b *testing.B, srv *server.Server) {
	b.Helper()
	snap := srv.MetricsSnapshot()
	if p99 := snap["sqlcheckd_request_seconds_p99{endpoint=/v1/analyze}"]; p99 > 0 {
		b.ReportMetric(p99*1000, "p99-ms")
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		b.Fatalf("marshal metrics snapshot: %v", err)
	}
	snapMu.Lock()
	// Re-runs of the same benchmark (harness calibration passes) overwrite:
	// only the final, full-length run's snapshot is worth keeping.
	servedSnaps[b.Name()] = payload
	snapMu.Unlock()
}

var (
	snapMu      sync.Mutex
	servedSnaps = map[string][]byte{}
)

func TestMain(m *testing.M) {
	code := m.Run()
	snapMu.Lock()
	names := make([]string, 0, len(servedSnaps))
	for name := range servedSnaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("benchsnap %s %s\n", name, servedSnaps[name])
	}
	snapMu.Unlock()
	os.Exit(code)
}

// benchServe measures warm round trips for one app and reports the served
// warm-hit-rate alongside the wall metrics.
func benchServe(b *testing.B, app *corpus.App, async bool) {
	client, srv := benchService(b, []*corpus.App{app})
	ctx := context.Background()
	req := &sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries}
	before, err := client.ServerStats(ctx)
	if err != nil {
		b.Fatalf("stats: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *sqlciv.AnalyzeResponse
		var err error
		if async {
			var st *sqlciv.JobStatus
			if st, err = client.SubmitJob(ctx, req); err == nil {
				res, err = client.WaitJob(ctx, st.ID)
			}
		} else {
			res, err = client.Analyze(ctx, req)
		}
		if err != nil {
			b.Fatalf("serve %s: %v", app.Name, err)
		}
		if len(res.Findings) == 0 {
			b.Fatalf("%s served no findings", app.Name)
		}
	}
	b.StopTimer()
	after, err := client.ServerStats(ctx)
	if err != nil {
		b.Fatalf("stats: %v", err)
	}
	dh := after.DiskCacheHits - before.DiskCacheHits
	vh := after.VerdictCacheHits - before.VerdictCacheHits
	vm := after.VerdictCacheMisses - before.VerdictCacheMisses
	if total := dh + vh + vm; total > 0 {
		b.ReportMetric(100*float64(dh+vh)/float64(total), "warm-hit-%")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	reportServed(b, srv)
}

func BenchmarkServeUtopiaSync(b *testing.B)  { benchServe(b, corpus.Utopia(), false) }
func BenchmarkServeUtopiaAsync(b *testing.B) { benchServe(b, corpus.Utopia(), true) }
func BenchmarkServeTigerSync(b *testing.B)   { benchServe(b, corpus.Tiger(), false) }
func BenchmarkServeEVESync(b *testing.B)     { benchServe(b, corpus.EVE(), false) }

// BenchmarkServeFleet is the mixed-fleet number: RunParallel clients
// hammering one warm 2-worker server with different apps, the closest
// benchable analogue of the CI-fleet steady state.
func BenchmarkServeFleet(b *testing.B) {
	apps := corpus.Apps()
	client, srv := benchService(b, apps)
	before, err := client.ServerStats(context.Background())
	if err != nil {
		b.Fatalf("stats: %v", err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			app := apps[i%len(apps)]
			i++
			res, err := client.Analyze(ctx,
				&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
			if err != nil {
				b.Fatalf("serve %s: %v", app.Name, err)
			}
			if res.Files == 0 {
				b.Fatalf("%s served an empty census", app.Name)
			}
		}
	})
	b.StopTimer()
	after, err := client.ServerStats(context.Background())
	if err != nil {
		b.Fatalf("stats: %v", err)
	}
	dh := after.DiskCacheHits - before.DiskCacheHits
	vh := after.VerdictCacheHits - before.VerdictCacheHits
	vm := after.VerdictCacheMisses - before.VerdictCacheMisses
	if total := dh + vh + vm; total > 0 {
		b.ReportMetric(100*float64(dh+vh)/float64(total), "warm-hit-%")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	reportServed(b, srv)
}

// retention_test.go pins the daemon's job-lifecycle hygiene: sync jobs are
// never retained, finished async jobs release their request sources
// immediately and are evicted from the id map by the retention sweep, job
// ids are unguessable, polling is tenant-scoped, and filesystem roots
// cannot escape the allowed prefix through symlinks.
package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// get runs one GET through the daemon's handler with an optional tenant
// header.
func get(t *testing.T, srv *Server, path, tenant string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// submitAndWait posts one async job (optionally under a tenant) and blocks
// until it reaches a terminal state.
func submitAndWait(t *testing.T, srv *Server, tenant string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(goldenRequest))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("submit: decode ack: %v", err)
	}
	srv.jobsMu.Lock()
	j := srv.jobs[st.ID]
	srv.jobsMu.Unlock()
	if j == nil {
		t.Fatalf("submitted job %q not in the id map", st.ID)
	}
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", st.ID)
	}
	return st.ID
}

// TestSyncJobsNotRetained: the synchronous path never parks anything in the
// id map — nothing to evict, nothing to leak.
func TestSyncJobsNotRetained(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	code, body := post(t, srv, "/v1/analyze", goldenRequest)
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", code, body)
	}
	if st := srv.Stats(); st.JobsRetained != 0 {
		t.Errorf("sync analyze retained %d jobs, want 0", st.JobsRetained)
	}
}

// TestFinishedJobReleasedAndEvicted: a finished async job drops its request
// (the retained status must not pin the submitted sources) and the
// retention sweep removes it from the map, after which polling 404s.
func TestFinishedJobReleasedAndEvicted(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	id := submitAndWait(t, srv, "")

	srv.jobsMu.Lock()
	j := srv.jobs[id]
	srv.jobsMu.Unlock()
	j.mu.Lock()
	phase, req := j.phase, j.req
	j.mu.Unlock()
	if phase != StateDone {
		t.Fatalf("job state %q, want done", phase)
	}
	if req != nil {
		t.Error("finished job still holds its request sources")
	}

	// Still pollable inside the retention window.
	if code, body := get(t, srv, "/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("poll before sweep: status %d: %s", code, body)
	}
	// A sweep with a cutoff in the future evicts everything terminal.
	srv.sweepJobs(time.Now().Add(time.Hour))
	st := srv.Stats()
	if st.JobsRetained != 0 || st.JobsEvicted == 0 {
		t.Errorf("after sweep: retained %d evicted %d, want 0 and >0", st.JobsRetained, st.JobsEvicted)
	}
	if code, _ := get(t, srv, "/v1/jobs/"+id, ""); code != http.StatusNotFound {
		t.Errorf("poll after sweep: status %d, want 404", code)
	}
}

// TestJobTenantScoped: only the submitting tenant can read a job; everyone
// else gets the unknown-id 404, and the id itself carries entropy so other
// tenants' ids cannot be enumerated.
func TestJobTenantScoped(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	id := submitAndWait(t, srv, "alpha")

	if !regexp.MustCompile(`^j\d{8}-[0-9a-f]{12}$`).MatchString(id) {
		t.Errorf("job id %q carries no random suffix", id)
	}
	if code, body := get(t, srv, "/v1/jobs/"+id, "alpha"); code != http.StatusOK {
		t.Fatalf("owner poll: status %d: %s", code, body)
	}
	for _, tenant := range []string{"", "beta"} {
		code, body := get(t, srv, "/v1/jobs/"+id, tenant)
		if code != http.StatusNotFound {
			t.Errorf("tenant %q read another tenant's job: status %d: %s", tenant, code, body)
		}
		if strings.Contains(body, StateDone) || strings.Contains(body, "findings") {
			t.Errorf("tenant %q 404 leaked job contents: %s", tenant, body)
		}
	}
}

// TestLoadRootSymlinkEscape: a symlinked directory under the allowed prefix
// must not grant access outside it, and symlinked .php files inside a legal
// root are skipped rather than followed.
func TestLoadRootSymlinkEscape(t *testing.T) {
	outside := t.TempDir()
	if err := os.WriteFile(filepath.Join(outside, "secret.php"), []byte("<?php // secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	prefix := t.TempDir()
	appDir := filepath.Join(prefix, "app")
	if err := os.Mkdir(appDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(appDir, "ok.php"), []byte("<?php // ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(outside, filepath.Join(prefix, "escape")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := os.Symlink(filepath.Join(outside, "secret.php"), filepath.Join(appDir, "leak.php")); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Workers: 1, FSRootPrefix: prefix})
	defer srv.Close()

	// The symlinked directory resolves outside the prefix: denied.
	if _, aerr := srv.loadRoot(filepath.Join(prefix, "escape")); aerr == nil || aerr.code != CodeRootDenied {
		t.Errorf("symlinked root escaped the prefix: %v", aerr)
	}
	// A legal root loads, but the symlinked file inside it is skipped.
	sources, aerr := srv.loadRoot(appDir)
	if aerr != nil {
		t.Fatalf("loadRoot(%s): %v", appDir, aerr)
	}
	if _, ok := sources["ok.php"]; !ok {
		t.Errorf("regular file missing from loaded root: %v", sources)
	}
	if _, ok := sources["leak.php"]; ok {
		t.Error("symlinked .php file was followed out of the root")
	}
}

// golden_test.go locks the daemon's wire payloads. The JSON bodies of the
// analyze response, a degraded response, the error envelope, and a running
// job's status snapshot are goldens under testdata/; regenerate with
//
//	go test ./internal/server -update
//
// after an intentional wire change. Volatile values — durations, cache and
// intern counters (the pools are process-global, so hits depend on what ran
// earlier in the binary), span ids, and budget step counts — are scrubbed
// before comparison; everything else drifting is a wire break.
package server

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sqlciv/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSources is the same fixture shape the sqlcheck CLI goldens use: one
// real vulnerability, one sanitized page.
var goldenSources = map[string]string{
	"vuln.php": `<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM t WHERE name='$id'");
`,
	"safe.php": `<?php
$id = addslashes($_GET['id']);
mysql_query("SELECT * FROM t WHERE name='$id'");
`,
}

// scrubs normalize run-to-run noise in rendered JSON while keeping it valid.
var (
	// Volatile numeric fields: wall-clock, cache/intern traffic, budget
	// meters, arena census, span ids.
	volatileNumRE = regexp.MustCompile(`"(string_analysis_ms|check_ms|string_analysis_wall_ms|check_wall_ms|` +
		`verdict_cache_hits|verdict_cache_misses|disk_cache_hits|disk_cache_misses|` +
		`parse_cache_hits|parse_cache_misses|budget_steps|budget_mem_high|` +
		`grammar_slab_bytes|intern_hits|intern_misses|elapsed_ms|span_id)": \d+`)
	// Budget-trip details embed the exact step count at the trip.
	stepsDetailRE = regexp.MustCompile(`\d+ steps used, limit \d+`)
)

func scrub(s string) string {
	s = volatileNumRE.ReplaceAllString(s, `"$1": 0`)
	s = stepsDetailRE.ReplaceAllString(s, `N steps used, limit N`)
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/server -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// post runs one request through the daemon's handler and returns the
// response body.
func post(t *testing.T, srv *Server, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

const goldenRequest = `{
  "sources": {
    "vuln.php": "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE name='$id'\");\n",
    "safe.php": "<?php\n$id = addslashes($_GET['id']);\nmysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"
  },
  "entries": ["safe.php", "vuln.php"]
}`

// TestGoldenAnalyzeResponse locks the full sync payload: finding fields
// (numeric check/label plus derived names), census, and the stats block's
// key set.
func TestGoldenAnalyzeResponse(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	code, body := post(t, srv, "/v1/analyze", goldenRequest)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	checkGolden(t, "golden_analyze.json", scrub(body))
}

// TestGoldenDegradedResponse locks the degraded payload: a one-step budget
// trips phase 1, so the page degrades to an explicit analysis-incomplete
// finding plus a degradation record with the budget reason.
func TestGoldenDegradedResponse(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	req := `{
  "sources": {
    "vuln.php": "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"
  },
  "entries": ["vuln.php"],
  "budget": {"max_steps": 1}
}`
	code, body := post(t, srv, "/v1/analyze", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, `"degradations"`) {
		t.Fatalf("one-step budget did not degrade:\n%s", body)
	}
	checkGolden(t, "golden_degraded.json", scrub(body))
}

// TestGoldenErrorEnvelope locks the structured error shape clients switch
// on.
func TestGoldenErrorEnvelope(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	code, body := post(t, srv, "/v1/analyze",
		`{"sources":{"a.php":"x"},"root":"/also"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, body)
	}
	checkGolden(t, "golden_error.json", scrub(body))
}

// TestGoldenJobSnapshot locks the running-job status payload: the job is
// fabricated with a tracer whose progress gauge is set to known totals, so
// the snapshot is deterministic (elapsed time is scrubbed).
func TestGoldenJobSnapshot(t *testing.T) {
	tr := obs.New()
	tr.AddPagesTotal(3)
	tr.PageDone(false)
	tr.PageDone(true)
	tr.AddHotspotsTotal(7)
	tr.HotspotDone(false)
	tr.HotspotDone(false)
	tr.HotspotDone(true)
	tr.AddFindings(2)
	sp := tr.Start("test", "unit")
	sp.Count("policy.cascade", 5)
	sp.End()
	j := &Job{
		id:     "j00000042",
		tenant: DefaultTenantName,
		phase:  StateRunning,
		tracer: tr,
		traced: true,
	}
	var sb strings.Builder
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, j.Status())
	sb.WriteString(rec.Body.String())
	checkGolden(t, "golden_job_snapshot.json", scrub(sb.String()))
}

// pack.go serves compiled runtime policy packs: the warm daemon runs (or
// replays from its caches) the analysis and hands fleets of sqlguard
// instances the binary pack that cmd/sqlguard and sqlciv/enforce consume.
// Both routes travel the same bounded job queue as /v1/analyze, so pack
// compilation is admission-controlled and tenant-budgeted like any other
// job — a warm daemon serving an unchanged app answers mostly from its
// verdict caches and only pays the automaton compilation itself.
package server

import (
	"fmt"
	"net/http"
)

// PackHotspotsHeader and PackUnavailableHeader annotate binary pack
// responses with the coverage summary (full stats ride the JSON routes).
const (
	PackHotspotsHeader    = "X-Sqlciv-Pack-Hotspots"
	PackUnavailableHeader = "X-Sqlciv-Pack-Unavailable"
)

// handlePackGet is GET /v1/pack?root=DIR[&entry=page.php...][&incremental=1]:
// analyze an application under the server's allowed filesystem prefix and
// respond with the raw policy pack bytes (application/octet-stream).
func (s *Server) handlePackGet(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		s.writeError(w, r, errf(http.StatusServiceUnavailable, CodeShutdown, "server shutting down"))
		return
	}
	q := r.URL.Query()
	root := q.Get("root")
	if root == "" {
		s.writeError(w, r, errf(http.StatusBadRequest, CodeBadRequest, "root query parameter is required (or POST a JSON request)"))
		return
	}
	req := &Request{
		Root:    root,
		Entries: q["entry"],
		Options: RequestOptions{
			EmitPack:    true,
			Incremental: q.Get("incremental") != "" && q.Get("incremental") != "0",
		},
	}
	s.servePack(w, r, req)
}

// handlePackPost is POST /v1/pack with the standard analyze Request body
// (inline sources or root); emit_pack is forced on and the response is the
// raw pack bytes instead of the JSON report.
func (s *Server) handlePackPost(w http.ResponseWriter, r *http.Request) {
	req, aerr := s.decodeBody(w, r)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	req.Options.EmitPack = true
	s.servePack(w, r, req)
}

func (s *Server) servePack(w http.ResponseWriter, r *http.Request, req *Request) {
	j, aerr := s.submit(r.Header.Get(TenantHeader), req, false)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	if rec := recFrom(r); rec != nil {
		rec.job = j
	}
	res, aerr := j.await(r.Context())
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	if res.PackStats != nil {
		w.Header().Set(PackHotspotsHeader, fmt.Sprintf("%d", res.PackStats.Hotspots))
		w.Header().Set(PackUnavailableHeader, fmt.Sprintf("%d", res.PackStats.Unavailable))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(res.Pack)
}

// pack_test.go covers the daemon's policy-pack surface: POST /v1/pack and
// GET /v1/pack return loadable binary packs whose coverage matches an
// in-process core.BuildPack over the same application, emit_pack threads the
// pack through the JSON report, and the GET route stays behind the same
// filesystem-root gate as /v1/analyze.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"sqlciv"
	"sqlciv/enforce"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/server"
)

// packBody encodes a corpus app as a /v1/pack request body.
func packBody(t *testing.T, app *corpus.App) io.Reader {
	t.Helper()
	data, err := json.Marshal(&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// readAll drains a binary pack response.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read pack body: %v", err)
	}
	return data
}

// TestPackEndpoint: POST /v1/pack on a corpus subject yields a pack that
// Load accepts, with the same hotspot keys an in-process BuildPack produces.
func TestPackEndpoint(t *testing.T) {
	app := corpus.Utopia()
	_, client := newTestService(t, server.Config{Workers: 2})

	data, err := client.Pack(context.Background(),
		&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatalf("Pack(%s): %v", app.Name, err)
	}
	pack, err := enforce.Load(data)
	if err != nil {
		t.Fatalf("served pack does not load: %v", err)
	}
	if pack.NumHotspots() == 0 {
		t.Fatal("served pack has no hotspots")
	}

	ref := reference(t, app)
	want, wantStats, err := core.BuildPack(ref, core.PackOptions{})
	if err != nil {
		t.Fatalf("in-process BuildPack: %v", err)
	}
	local, err := enforce.Load(want)
	if err != nil {
		t.Fatalf("in-process pack does not load: %v", err)
	}
	gotKeys, wantKeys := pack.Keys(), local.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("served pack has %d hotspots, in-process %d", len(gotKeys), len(wantKeys))
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k {
			t.Errorf("hotspot %d: served key %q, in-process %q", i, gotKeys[i], k)
		}
		sm, _ := pack.Hotspot(k)
		lm, _ := local.Hotspot(k)
		if sm.Available() != lm.Available() || sm.Verified() != lm.Verified() ||
			sm.NumStates() != lm.NumStates() {
			t.Errorf("hotspot %q: served (avail=%v verified=%v states=%d) != in-process (avail=%v verified=%v states=%d)",
				k, sm.Available(), sm.Verified(), sm.NumStates(),
				lm.Available(), lm.Verified(), lm.NumStates())
		}
	}
	if wantStats.Hotspots != len(wantKeys) {
		t.Errorf("stats hotspots=%d, keys=%d", wantStats.Hotspots, len(wantKeys))
	}
}

// TestPackCoverageHeaders: the binary response carries the coverage summary
// as X-Sqlciv-Pack-* headers and an octet-stream content type.
func TestPackCoverageHeaders(t *testing.T) {
	app := corpus.Utopia()
	_, client := newTestService(t, server.Config{Workers: 1})

	resp, err := http.Post(client.BaseURL+"/v1/pack", "application/json",
		packBody(t, app))
	if err != nil {
		t.Fatalf("POST /v1/pack: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/pack: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q, want application/octet-stream", ct)
	}
	if resp.Header.Get(server.PackHotspotsHeader) == "" {
		t.Errorf("%s header missing", server.PackHotspotsHeader)
	}
	if resp.Header.Get(server.PackUnavailableHeader) == "" {
		t.Errorf("%s header missing", server.PackUnavailableHeader)
	}
}

// TestAnalyzeEmitPack: Options.EmitPack threads the pack and its stats
// through the JSON report; a plain analyze leaves both empty so existing
// consumers see byte-identical responses.
func TestAnalyzeEmitPack(t *testing.T) {
	app := corpus.Utopia()
	_, client := newTestService(t, server.Config{Workers: 1})
	ctx := context.Background()

	plain, err := client.Analyze(ctx,
		&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(plain.Pack) != 0 || plain.PackStats != nil {
		t.Errorf("plain analyze leaked pack fields: %d bytes, stats %v",
			len(plain.Pack), plain.PackStats)
	}

	withPack, err := client.Analyze(ctx, &sqlciv.AnalyzeRequest{
		Sources: app.Sources, Entries: app.Entries,
		Options: sqlciv.AnalyzeRequestOptions{EmitPack: true},
	})
	if err != nil {
		t.Fatalf("Analyze(emit_pack): %v", err)
	}
	if len(withPack.Pack) == 0 || withPack.PackStats == nil {
		t.Fatalf("emit_pack analyze returned no pack (len=%d stats=%v)",
			len(withPack.Pack), withPack.PackStats)
	}
	pack, err := enforce.Load(withPack.Pack)
	if err != nil {
		t.Fatalf("emit_pack pack does not load: %v", err)
	}
	if pack.NumHotspots() != withPack.PackStats.Hotspots {
		t.Errorf("pack has %d hotspots, stats say %d",
			pack.NumHotspots(), withPack.PackStats.Hotspots)
	}
}

// TestPackGetRootGate: GET /v1/pack requires a root parameter, refuses roots
// when filesystem access is disabled, and serves a loadable pack for a legal
// root under the configured prefix.
func TestPackGetRootGate(t *testing.T) {
	t.Run("no-root-param", func(t *testing.T) {
		_, client := newTestService(t, server.Config{Workers: 1})
		resp, err := http.Get(client.BaseURL + "/v1/pack")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/pack without root: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("fs-disabled", func(t *testing.T) {
		_, client := newTestService(t, server.Config{Workers: 1})
		resp, err := http.Get(client.BaseURL + "/v1/pack?root=/tmp/app")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("GET /v1/pack with roots disabled: status %d, want 403", resp.StatusCode)
		}
	})

	t.Run("legal-root", func(t *testing.T) {
		app := corpus.Utopia()
		prefix := t.TempDir()
		appDir := filepath.Join(prefix, "app")
		if err := os.Mkdir(appDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, src := range app.Sources {
			if err := os.WriteFile(filepath.Join(appDir, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, client := newTestService(t, server.Config{Workers: 1, FSRootPrefix: prefix})
		url := client.BaseURL + "/v1/pack?root=" + appDir
		for _, e := range app.Entries {
			url += "&entry=" + e
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/pack legal root: status %d", resp.StatusCode)
		}
		data := readAll(t, resp)
		if _, err := enforce.Load(data); err != nil {
			t.Errorf("GET pack does not load: %v", err)
		}
	})
}

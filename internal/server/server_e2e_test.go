// server_e2e_test.go is the end-to-end differential suite: every Table-1
// corpus subject travels through the real HTTP surface — httptest listener,
// the library client from the root package, JSON both ways — and the served
// findings must reconstruct DeepEqual to an in-process AnalyzeAppCtx run.
// Both endpoints are exercised in both cache states (sync-cold/async-warm
// on one server, async-cold/sync-warm on another), so byte-identity holds
// regardless of which path filled the caches.
package server_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"sqlciv"
	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/server"
	"sqlciv/internal/vcache"
)

// newTestService starts a Server with a fresh persistent store under t's
// temp dir and returns a client against a real listener.
func newTestService(t *testing.T, cfg server.Config) (*server.Server, *sqlciv.Client) {
	t.Helper()
	if cfg.VerdictCache == nil {
		store, err := vcache.Open(filepath.Join(t.TempDir(), "vc"))
		if err != nil {
			t.Fatalf("vcache.Open: %v", err)
		}
		cfg.VerdictCache = store
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, sqlciv.NewServiceClient(ts.URL)
}

// reference runs the app in process with options matching a served job:
// sequential, unbudgeted, untraced, uncached.
func reference(t *testing.T, app *corpus.App) *core.AppResult {
	t.Helper()
	res, err := core.AnalyzeAppCtx(context.Background(),
		analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
	if err != nil {
		t.Fatalf("reference AnalyzeAppCtx(%s): %v", app.Name, err)
	}
	return res
}

// scrubSpanIDs zeroes trace span ids: async jobs run traced (for the
// progress endpoint), so their findings carry ids from the job's own
// tracer, which an untraced reference run cannot share.
func scrubSpanIDs(res *core.AppResult) {
	for i := range res.Findings {
		res.Findings[i].SpanID = 0
	}
	for i := range res.Degradations {
		res.Degradations[i].SpanID = 0
	}
}

// assertSame compares a served payload against the in-process reference.
// exact=true additionally demands identical span ids (the sync path is
// untraced, so both sides are all zero — full byte-identity).
func assertSame(t *testing.T, label string, ref *core.AppResult, got *sqlciv.AnalyzeResponse, exact bool) {
	t.Helper()
	rec := got.CoreResult()
	refFindings, refDegr := ref.Findings, ref.Degradations
	if !exact {
		scrubSpanIDs(rec)
	}
	if len(rec.Findings) == 0 && len(refFindings) == 0 {
		// reflect.DeepEqual(nil, []T{}) is false; both empty is equal.
	} else if !reflect.DeepEqual(rec.Findings, refFindings) {
		t.Errorf("%s: served findings diverged from in-process run.\nserved: %#v\nlocal:  %#v",
			label, rec.Findings, refFindings)
	}
	if len(rec.Degradations) != 0 || len(refDegr) != 0 {
		if !reflect.DeepEqual(rec.Degradations, refDegr) {
			t.Errorf("%s: served degradations diverged.\nserved: %#v\nlocal:  %#v",
				label, rec.Degradations, refDegr)
		}
	}
	if got.Verified != ref.Verified() {
		t.Errorf("%s: served verified=%v, local %v", label, got.Verified, ref.Verified())
	}
	if got.Files != ref.Files || got.Lines != ref.Lines ||
		got.GrammarV != ref.NumNTs || got.GrammarR != ref.NumProds {
		t.Errorf("%s: served census (files=%d lines=%d V=%d R=%d) != local (files=%d lines=%d V=%d R=%d)",
			label, got.Files, got.Lines, got.GrammarV, got.GrammarR,
			ref.Files, ref.Lines, ref.NumNTs, ref.NumProds)
	}
}

func analyzeSync(t *testing.T, c *sqlciv.Client, app *corpus.App) *sqlciv.AnalyzeResponse {
	t.Helper()
	res, err := c.Analyze(context.Background(),
		&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", app.Name, err)
	}
	return res
}

func analyzeAsync(t *testing.T, c *sqlciv.Client, app *corpus.App) *sqlciv.AnalyzeResponse {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, &sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatalf("SubmitJob(%s): %v", app.Name, err)
	}
	if st.State != server.StateQueued && st.State != server.StateRunning {
		t.Fatalf("SubmitJob(%s): unexpected initial state %q", app.Name, st.State)
	}
	res, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitJob(%s): %v", app.Name, err)
	}
	return res
}

// TestServedDifferential is the acceptance suite: all five subjects, sync
// and async, cold and warm, against one warm resident server each way.
func TestServedDifferential(t *testing.T) {
	// Server A sees sync first (cold) then async (warm);
	// server B sees async first (cold) then sync (warm).
	_, clientA := newTestService(t, server.Config{Workers: 2})
	_, clientB := newTestService(t, server.Config{Workers: 2})
	for _, app := range corpus.Apps() {
		ref := reference(t, app)
		assertSame(t, app.Name+"/sync-cold", ref, analyzeSync(t, clientA, app), true)
		assertSame(t, app.Name+"/async-warm", ref, analyzeAsync(t, clientA, app), false)
		assertSame(t, app.Name+"/async-cold", ref, analyzeAsync(t, clientB, app), false)
		assertSame(t, app.Name+"/sync-warm", ref, analyzeSync(t, clientB, app), true)
	}
}

// TestWarmRepeatHitsCache pins the amortization claim: a repeat submission
// of an unchanged app answers its hotspot checks from the verdict cache
// tiers (persistent store first, then the in-memory memo).
func TestWarmRepeatHitsCache(t *testing.T) {
	srv, client := newTestService(t, server.Config{Workers: 1})
	app := corpus.Utopia()
	analyzeSync(t, client, app)
	cold := srv.Stats()
	analyzeSync(t, client, app)
	warm := srv.Stats()
	gained := (warm.DiskCacheHits + warm.VerdictCacheHits) - (cold.DiskCacheHits + cold.VerdictCacheHits)
	if gained <= 0 {
		t.Fatalf("warm repeat gained no cache hits: cold %+v warm %+v", cold, warm)
	}
	// The repeat recomputed nothing: every one of its hotspot checks was a
	// cache hit, so the compute count (memo misses) must not move.
	if warm.VerdictCacheMisses != cold.VerdictCacheMisses {
		t.Errorf("warm repeat recomputed %d hotspots (memo misses %d -> %d)",
			warm.VerdictCacheMisses-cold.VerdictCacheMisses, cold.VerdictCacheMisses, warm.VerdictCacheMisses)
	}
	if warm.WarmHitPct <= 0 {
		t.Errorf("warm hit pct = %v, want > 0", warm.WarmHitPct)
	}
}

// TestIncrementalEditOverWire pins the daemon's incremental acceptance
// claim: a warm sqlcheckd serves an edit-one-file re-analysis without
// re-parsing unchanged files — proven by exact incremental counters, not
// timings — while the served findings stay byte-identical to a cold
// in-process run over the edited sources.
func TestIncrementalEditOverWire(t *testing.T) {
	srv, client := newTestService(t, server.Config{Workers: 1})
	app := corpus.Tiger()
	target := app.Entries[0]
	submit := func(sources map[string]string) *sqlciv.AnalyzeResponse {
		t.Helper()
		res, err := client.Analyze(context.Background(), &sqlciv.AnalyzeRequest{
			Sources: sources, Entries: app.Entries,
			Options: sqlciv.AnalyzeRequestOptions{Incremental: true},
		})
		if err != nil {
			t.Fatalf("incremental Analyze(%s): %v", app.Name, err)
		}
		return res
	}

	cold := submit(app.Sources)
	if cold.Stats.IncrPagesRecomputed != int64(len(app.Entries)) || cold.Stats.IncrPagesReplayed != 0 {
		t.Fatalf("cold fill recomputed %d / replayed %d pages, want %d / 0",
			cold.Stats.IncrPagesRecomputed, cold.Stats.IncrPagesReplayed, len(app.Entries))
	}

	mutated := make(map[string]string, len(app.Sources))
	for k, v := range app.Sources {
		mutated[k] = v
	}
	mutated[target] += "<!-- edited -->\n"
	warm := submit(mutated)

	// The edited file is an entry page no other page includes: exactly one
	// page recomputes, every other page replays, and the recompute re-parses
	// only the edited file (its unchanged includes come from the session's
	// parse cache).
	if warm.Stats.IncrPagesRecomputed != 1 {
		t.Errorf("edit recomputed %d pages, want exactly 1", warm.Stats.IncrPagesRecomputed)
	}
	if warm.Stats.IncrPagesReplayed != int64(len(app.Entries)-1) {
		t.Errorf("edit replayed %d pages, want %d", warm.Stats.IncrPagesReplayed, len(app.Entries)-1)
	}
	if warm.Stats.IncrFilesParsed != 1 {
		t.Errorf("edit re-parsed %d files, want exactly 1 (the edited file)", warm.Stats.IncrFilesParsed)
	}
	if warm.Stats.IncrHotspotsReplayed == 0 {
		t.Error("edit replayed no hotspot verdicts")
	}

	// Replay must not cost fidelity: the served payload reconstructs the
	// cold in-process run over the same edited sources exactly.
	res, err := core.AnalyzeAppCtx(context.Background(),
		analysis.NewMapResolver(mutated), app.Entries, core.Options{})
	if err != nil {
		t.Fatalf("reference AnalyzeAppCtx: %v", err)
	}
	assertSame(t, app.Name+"/incr-edit", res, warm, true)

	// The reuse is visible on the operational surfaces too: /debug/server's
	// incremental section and the sqlciv_incr_* metrics series.
	st := srv.Stats()
	if st.Incremental == nil {
		t.Fatal("server stats carry no incremental section after incremental jobs")
	}
	if st.Incremental.Sessions != 1 {
		t.Errorf("resident sessions = %d, want 1", st.Incremental.Sessions)
	}
	if st.Incremental.PagesReplayed != warm.Stats.IncrPagesReplayed {
		t.Errorf("server pages_replayed = %d, want %d",
			st.Incremental.PagesReplayed, warm.Stats.IncrPagesReplayed)
	}
	if st.Incremental.FilesParsed != cold.Stats.IncrFilesParsed+warm.Stats.IncrFilesParsed {
		t.Errorf("server files_parsed = %d, want %d",
			st.Incremental.FilesParsed, cold.Stats.IncrFilesParsed+warm.Stats.IncrFilesParsed)
	}
	snap := srv.MetricsSnapshot()
	if got := snap["sqlciv_incr_pages_replayed_total"]; got != float64(warm.Stats.IncrPagesReplayed) {
		t.Errorf("sqlciv_incr_pages_replayed_total = %v, want %d", got, warm.Stats.IncrPagesReplayed)
	}
	if got := snap["sqlciv_incr_sessions"]; got != 1 {
		t.Errorf("sqlciv_incr_sessions = %v, want 1", got)
	}
	if got := snap["sqlciv_incr_page_replay_pct"]; got <= 0 {
		t.Errorf("sqlciv_incr_page_replay_pct = %v, want > 0", got)
	}
}

// TestIncrementalSessionEviction pins the session bound: with MaxSessions=1
// a second app evicts the first, whose next submission runs cold again —
// eviction costs warmth, never correctness.
func TestIncrementalSessionEviction(t *testing.T) {
	srv, client := newTestService(t, server.Config{Workers: 1, MaxSessions: 1})
	submit := func(app *corpus.App) *sqlciv.AnalyzeResponse {
		t.Helper()
		res, err := client.Analyze(context.Background(), &sqlciv.AnalyzeRequest{
			Sources: app.Sources, Entries: app.Entries,
			Options: sqlciv.AnalyzeRequestOptions{Incremental: true},
		})
		if err != nil {
			t.Fatalf("incremental Analyze(%s): %v", app.Name, err)
		}
		return res
	}
	first, second := corpus.Warp(), corpus.EVE()
	submit(first)
	submit(second) // evicts first's session under the cap of 1
	again := submit(first)
	if again.Stats.IncrPagesReplayed != 0 {
		t.Errorf("evicted app replayed %d pages, want 0 (cold rebuild)", again.Stats.IncrPagesReplayed)
	}
	st := srv.Stats()
	if st.Incremental == nil {
		t.Fatal("no incremental section")
	}
	if st.Incremental.Sessions != 1 {
		t.Errorf("resident sessions = %d, want 1 under MaxSessions=1", st.Incremental.Sessions)
	}
	if st.Incremental.SessionsEvicted < 2 {
		t.Errorf("sessions evicted = %d, want >= 2", st.Incremental.SessionsEvicted)
	}
}

// TestServedXSS checks the optional XSS audit travels the wire and matches
// the library audit.
func TestServedXSS(t *testing.T) {
	_, client := newTestService(t, server.Config{Workers: 1})
	sources := map[string]string{
		"page.php": `<?php
$name = $_GET['name'];
echo "<div>Hello $name</div>";
mysql_query("SELECT * FROM t WHERE name='$name'");
`,
	}
	res, err := client.Analyze(context.Background(), &sqlciv.AnalyzeRequest{
		Sources: sources,
		Entries: []string{"page.php"},
		Options: sqlciv.AnalyzeRequestOptions{XSS: true},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(res.Findings) == 0 {
		t.Error("expected a SQL finding")
	}
	if len(res.XSS) == 0 {
		t.Error("expected an XSS finding")
	}
	if res.Verified {
		t.Error("vulnerable app served as verified")
	}
	for _, f := range res.XSS {
		cf := f.Core()
		if cf.Entry != "page.php" || cf.Check == 0 {
			t.Errorf("bad XSS wire roundtrip: %+v -> %+v", f, cf)
		}
	}
}

// TestDegradedOverWire checks that a budget-limited request degrades to
// explicit analysis-incomplete findings on the wire — never a silent pass —
// and that the wire degradations reconstruct losslessly.
func TestDegradedOverWire(t *testing.T) {
	_, client := newTestService(t, server.Config{Workers: 1})
	app := corpus.Utopia()
	res, err := client.Analyze(context.Background(), &sqlciv.AnalyzeRequest{
		Sources: app.Sources,
		Entries: app.Entries,
		Budget:  sqlciv.AnalyzeRequestBudget{MaxSteps: 50},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Verified {
		t.Fatal("budget-starved run served as verified")
	}
	if res.DegradedPages == 0 && res.DegradedHotspots == 0 {
		t.Fatal("MaxSteps=50 run reported no degradations")
	}
	if len(res.Degradations) == 0 {
		t.Fatal("degraded run carried no degradation details")
	}
	for _, d := range res.Degradations {
		cd := d.Core()
		if cd.Reason.String() != d.ReasonName {
			t.Errorf("degradation reason roundtrip: %d -> %s != %s", d.Reason, cd.Reason, d.ReasonName)
		}
	}
	incomplete := 0
	for _, f := range res.Findings {
		if f.Kind == "unknown" {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Error("degraded units produced no analysis-incomplete findings")
	}
}

// TestQueueOverflow fills the bounded queue and asserts the structured 429
// with a Retry-After hint.
func TestQueueOverflow(t *testing.T) {
	// 1 worker, queue depth 1: the first job occupies the worker, the
	// second waits, the third must be refused.
	_, client := newTestService(t, server.Config{Workers: 1, QueueDepth: 1})
	app := corpus.Tiger() // big enough to hold the worker for a moment
	sawFull := false
	for i := 0; i < 12 && !sawFull; i++ {
		_, err := client.SubmitJob(context.Background(),
			&sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
		if err != nil {
			apiErr, ok := err.(*sqlciv.APIError)
			if !ok {
				t.Fatalf("submit %d: unexpected error type %T: %v", i, err, err)
			}
			if apiErr.Status != 429 {
				t.Fatalf("submit %d: status %d, want 429", i, apiErr.Status)
			}
			if apiErr.Code != server.CodeQueueFull {
				t.Fatalf("submit %d: code %q, want %q", i, apiErr.Code, server.CodeQueueFull)
			}
			if apiErr.RetryAfter <= 0 {
				t.Errorf("submit %d: missing Retry-After on 429", i)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("never saw queue-full 429 with 1 worker / depth 1")
	}
}

// TestJobLifecycle covers the async surface: acknowledge, poll, long-poll,
// final report, and unknown-id 404.
func TestJobLifecycle(t *testing.T) {
	_, client := newTestService(t, server.Config{Workers: 1})
	ctx := context.Background()
	app := corpus.EVE()
	st, err := client.SubmitJob(ctx, &sqlciv.AnalyzeRequest{Sources: app.Sources, Entries: app.Entries})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" {
		t.Fatal("job acknowledged without an id")
	}
	res, err := client.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if res == nil || len(res.Findings) == 0 {
		t.Fatal("EVE served no findings")
	}
	// Completed jobs stay pollable.
	again, err := client.Job(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("Job after done: %v", err)
	}
	if again.State != server.StateDone || again.Result == nil {
		t.Fatalf("finished job state %q, result nil=%v", again.State, again.Result == nil)
	}
	if _, err := client.Job(ctx, "j-nope", 0); err == nil {
		t.Fatal("unknown job id did not 404")
	} else if apiErr, ok := err.(*sqlciv.APIError); !ok || apiErr.Status != 404 {
		t.Fatalf("unknown job id: %v, want 404 APIError", err)
	}
}

// TestColdRestartServesFromDisk closes a server and starts a new one over
// the same vcache directory: the "restart warm" property — the fresh
// process answers from the persistent tier with zero recomputes.
func TestColdRestartServesFromDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "vc")
	open := func() *vcache.Store {
		store, err := vcache.Open(dir)
		if err != nil {
			t.Fatalf("vcache.Open: %v", err)
		}
		return store
	}
	app := corpus.Warp()
	ref := reference(t, app)

	srv1 := server.New(server.Config{Workers: 1, VerdictCache: open()})
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := sqlciv.NewServiceClient(ts1.URL)
	analyzeSync(t, c1, app)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("close first server: %v", err)
	}

	srv2 := server.New(server.Config{Workers: 1, VerdictCache: open()})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	c2 := sqlciv.NewServiceClient(ts2.URL)
	got := analyzeSync(t, c2, app)
	assertSame(t, app.Name+"/restart-warm", ref, got, true)
	stats := srv2.Stats()
	if stats.DiskCacheHits == 0 {
		t.Errorf("restarted server served %s without disk hits: %+v", app.Name, stats)
	}
	if stats.VerdictCacheMisses != 0 {
		t.Errorf("restarted server recomputed %d hotspots, want 0 (all from disk)", stats.VerdictCacheMisses)
	}
}

// flight.go is the degradation flight recorder: a fixed-size ring of recent
// request/job summaries, plus a second ring that retains the FULL obs span
// trace of any request that degraded, errored, or breached the latency SLO.
// Every job is traced into a bounded per-job ring (see queue.go); healthy
// traces are discarded when the job completes, so the steady-state cost is
// one small ring per request in flight — but when something goes wrong the
// whole span timeline of that request is still retrievable afterwards from
// GET /debug/flight?id=<id>, long after the logs have scrolled.
package server

import (
	"net/http"
	"sync"
	"time"

	"sqlciv/internal/obs"
)

// FlightEntry is one recorded request or job. Trace is populated only for
// promoted (retained) entries fetched by id.
type FlightEntry struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "request" | "job"
	// Time is when the unit finished, RFC3339Nano.
	Time     string `json:"time"`
	Tenant   string `json:"tenant,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	Status   int    `json:"status,omitempty"`
	Code     string `json:"code,omitempty"` // error-envelope code, if any
	WallMS   int64  `json:"wall_ms"`
	QueueMS  int64  `json:"queue_ms,omitempty"`
	Findings int    `json:"findings,omitempty"`
	// Degradations counts units cut short; Degraded mirrors it as the
	// promotion trigger (alongside errors and SLO breaches).
	Degradations int  `json:"degradations,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
	SLOBreach    bool `json:"slo_breach,omitempty"`
	// Retained marks entries whose trace survived; Trace carries the span
	// events (only in the by-id view), TraceDropped how many the bounded
	// per-job ring evicted before promotion.
	Retained     bool        `json:"retained,omitempty"`
	Trace        []obs.Event `json:"trace,omitempty"`
	TraceDropped int64       `json:"trace_dropped,omitempty"`
}

// bad reports whether the entry earns trace retention.
func (e *FlightEntry) bad() bool {
	return e.Degraded || e.SLOBreach || e.Status >= 500
}

// flightRecorder keeps the two rings. recent holds summaries of the last N
// units regardless of health; retained holds the last K bad units WITH
// their traces. The rings evict independently, so a burst of healthy
// traffic can scroll a bad request out of recent while its trace stays in
// retained — that separation is the whole point.
type flightRecorder struct {
	mu       sync.Mutex
	recent   []FlightEntry // ring, no traces
	recentAt int
	retained []FlightEntry // ring, traces attached
	retainAt int
}

func newFlightRecorder(recent, retain int) *flightRecorder {
	return &flightRecorder{
		recent:   make([]FlightEntry, 0, recent),
		retained: make([]FlightEntry, 0, retain),
	}
}

// record files the finished unit. ring may be nil (nothing traced); when the
// entry is bad and a ring exists, the trace is promoted into the retained
// ring before the per-job ring is dropped.
func (f *flightRecorder) record(e FlightEntry, ring *obs.RingSink) {
	if e.bad() && ring != nil {
		e.Retained = true
		e.Trace = ring.Events()
		e.TraceDropped = ring.Dropped()
	}
	f.mu.Lock()
	summary := e
	summary.Trace = nil // the recent ring carries summaries only
	push(&f.recent, &f.recentAt, summary)
	if e.Retained {
		push(&f.retained, &f.retainAt, e)
	}
	f.mu.Unlock()
}

func push(ring *[]FlightEntry, at *int, e FlightEntry) {
	if cap(*ring) == 0 {
		return
	}
	if len(*ring) < cap(*ring) {
		*ring = append(*ring, e)
		return
	}
	(*ring)[*at] = e
	*at = (*at + 1) % cap(*ring)
}

// ordered returns a ring's entries oldest-first.
func ordered(ring []FlightEntry, at int) []FlightEntry {
	out := make([]FlightEntry, 0, len(ring))
	if len(ring) == cap(ring) && cap(ring) > 0 {
		out = append(out, ring[at:]...)
		out = append(out, ring[:at]...)
	} else {
		out = append(out, ring...)
	}
	return out
}

// flightSnapshot is the GET /debug/flight payload: newest-last in each list.
type flightSnapshot struct {
	Recent   []FlightEntry `json:"recent"`
	Retained []FlightEntry `json:"retained"`
}

func (f *flightRecorder) snapshot() flightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := flightSnapshot{
		Recent:   ordered(f.recent, f.recentAt),
		Retained: make([]FlightEntry, 0, len(f.retained)),
	}
	// Summaries only in the listing; the trace comes via ?id=.
	for _, e := range ordered(f.retained, f.retainAt) {
		e.Trace = nil
		snap.Retained = append(snap.Retained, e)
	}
	return snap
}

// find returns the full entry (trace included when retained) by id.
func (f *flightRecorder) find(id string) (FlightEntry, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.retained {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range f.recent {
		if e.ID == id {
			return e, true
		}
	}
	return FlightEntry{}, false
}

// handler serves GET /debug/flight (the two rings, summaries only) and
// GET /debug/flight?id=<id> (one entry, trace included when retained).
func (f *flightRecorder) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			e, ok := f.find(id)
			if !ok {
				writeJSON(w, http.StatusNotFound,
					errorEnvelope{Error: ErrorBody{Code: CodeNotFound, Message: "no flight entry: " + id}})
				return
			}
			writeJSON(w, http.StatusOK, e)
			return
		}
		writeJSON(w, http.StatusOK, f.snapshot())
	})
}

func flightNow() string { return time.Now().UTC().Format(time.RFC3339Nano) }

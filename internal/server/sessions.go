// sessions.go is the daemon's incremental-session tier. A request that sets
// options.incremental runs through a resident core.Session keyed by (tenant,
// app identity), so the daemon keeps per-app parse trees and page memos warm
// across submissions: an IDE or CI client that re-submits after editing one
// file gets back a run where every unchanged page replayed its prior outcome
// and only the dirtied include closure recomputed.
//
// Sessions are bounded two ways — an LRU cap (Config.MaxSessions) because
// each session retains parse trees and hotspot results for a whole
// application, and an idle-retention sweep (Config.SessionRetention) riding
// the existing janitor. Eviction only costs warmth: the evicted app's next
// submission runs cold and rebuilds its session.
//
// Keys are intentionally cheap — the filesystem root, or a hash of the
// sorted inline source paths. Two different apps sharing a key is harmless:
// session validation is content-hashed, so a collision can only cause cache
// misses, never a wrong replay. Tenant is part of the key so no tenant can
// probe timing differences of another tenant's sessions.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync/atomic"
	"time"

	"sqlciv/internal/core"
)

// residentSession is one app's warm incremental state plus its LRU clock.
type residentSession struct {
	ses      *core.Session
	lastUsed time.Time
}

// sessionKey identifies the session a request should warm: tenant plus the
// app's root directory, or a hash of its sorted inline source paths.
func sessionKey(tenant string, req *Request) string {
	if req.Root != "" {
		return tenant + "\x00root\x00" + req.Root
	}
	paths := make([]string, 0, len(req.Sources))
	for p := range req.Sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return tenant + "\x00inline\x00" + hex.EncodeToString(h.Sum(nil))
}

// session returns the resident session for key, creating it (and evicting
// the least recently used beyond MaxSessions) if needed.
func (s *Server) session(key string) *core.Session {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if e, ok := s.sessions[key]; ok {
		e.lastUsed = now
		return e.ses
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		oldestKey := ""
		var oldest time.Time
		for k, e := range s.sessions {
			if oldestKey == "" || e.lastUsed.Before(oldest) {
				oldestKey, oldest = k, e.lastUsed
			}
		}
		delete(s.sessions, oldestKey)
		s.sessEvicted.Add(1)
	}
	e := &residentSession{ses: core.NewSession(core.SessionConfig{}), lastUsed: now}
	s.sessions[key] = e
	return e.ses
}

// sweepSessions evicts sessions idle since before cutoff.
func (s *Server) sweepSessions(cutoff time.Time) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for k, e := range s.sessions {
		if e.lastUsed.Before(cutoff) {
			delete(s.sessions, k)
			s.sessEvicted.Add(1)
		}
	}
}

// sessionCount reports the resident sessions (metrics, /debug/server).
func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// incrTotals accumulates the per-run core.IncrStats of every incremental job
// into server-lifetime counters, the same pattern as the job atomics: the
// run path adds once per job, /metrics and /debug/server read at snapshot
// time.
type incrTotals struct {
	filesHashed       atomic.Int64
	filesReused       atomic.Int64
	filesParsed       atomic.Int64
	pagesReplayed     atomic.Int64
	pagesRecomputed   atomic.Int64
	hotspotsReplayed  atomic.Int64
	hotspotsRechecked atomic.Int64
}

func (t *incrTotals) add(in *core.IncrStats) {
	t.filesHashed.Add(in.FilesHashed)
	t.filesReused.Add(in.FilesReused)
	t.filesParsed.Add(in.FilesParsed)
	t.pagesReplayed.Add(in.PagesReplayed)
	t.pagesRecomputed.Add(in.PagesRecomputed)
	t.hotspotsReplayed.Add(in.HotspotsReplayed)
	t.hotspotsRechecked.Add(in.HotspotsRechecked)
}

// pageReplayPct is the lifetime fraction of incremental pages served by
// replay.
func (t *incrTotals) pageReplayPct() float64 {
	pr, rc := t.pagesReplayed.Load(), t.pagesRecomputed.Load()
	if pr+rc == 0 {
		return 0
	}
	return 100 * float64(pr) / float64(pr+rc)
}

// incrementalStats renders the /debug/server incremental section; nil until
// any request has opted in, so non-incremental deployments serve an
// unchanged payload.
func (s *Server) incrementalStats() *IncrementalStats {
	sessions := s.sessionCount()
	evicted := s.sessEvicted.Load()
	pr, rc := s.incr.pagesReplayed.Load(), s.incr.pagesRecomputed.Load()
	if sessions == 0 && evicted == 0 && pr+rc == 0 {
		return nil
	}
	return &IncrementalStats{
		Sessions:          sessions,
		SessionsEvicted:   evicted,
		FilesHashed:       s.incr.filesHashed.Load(),
		FilesReused:       s.incr.filesReused.Load(),
		FilesParsed:       s.incr.filesParsed.Load(),
		PagesReplayed:     pr,
		PagesRecomputed:   rc,
		HotspotsReplayed:  s.incr.hotspotsReplayed.Load(),
		HotspotsRechecked: s.incr.hotspotsRechecked.Load(),
		PageReplayPct:     s.incr.pageReplayPct(),
	}
}

// Package server is the analyzer as a service: a long-lived HTTP+JSON
// daemon (cmd/sqlcheckd) that fleets of CI jobs and IDE clients submit PHP
// applications to, instead of each paying the analyzer's warm-up and cache
// misses themselves.
//
// Endpoints:
//
//	POST /v1/analyze     submit an app, block, get the full findings /
//	                     degradations / stats payload (the wire mirror of
//	                     core.AppResult)
//	POST /v1/jobs        submit the same body asynchronously; returns the
//	                     job id immediately
//	GET  /v1/jobs/<id>   job status: live obs progress snapshot while it
//	                     runs (?wait=DURATION long-polls for completion),
//	                     the final report when done. Ids are unguessable
//	                     and visible only to the submitting tenant; a
//	                     finished report stays pollable for JobRetention,
//	                     then the janitor evicts it
//	GET  /healthz        liveness probe
//	GET  /debug/server   queue depth, per-tenant budget trips, verdict-
//	                     cache hit rates, arena/intern census
//	GET  /debug/...      the existing obs debug mux (expvar, pprof,
//	                     progress) for the server's run-level tracer
//
// What makes the daemon worth running is the state it keeps resident: one
// shared policy.Checker whose in-memory fingerprint-keyed verdict memo
// stays warm across requests, one persistent vcache store flushed after
// every job, the process-global DFA/terminal-run interns, and the byte-
// class partition cache — so repeat submissions of unchanged apps answer
// mostly from fingerprint hits. Admission is bounded (fixed workers, fixed
// queue depth, 429 + Retry-After on overflow) and tenant-isolated (per-
// tenant in-flight caps and budget ceilings; an abusive tenant's oversized
// jobs degrade soundly to VerdictUnknown inside its own allowance).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlciv/internal/grammar"
	"sqlciv/internal/obs"
	"sqlciv/internal/obs/metrics"
	"sqlciv/internal/policy"
	"sqlciv/internal/vcache"
)

// Config sizes one Server.
type Config struct {
	// Workers is the analysis worker pool size (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting beyond the running ones
	// (default 2×Workers). A full queue refuses submissions with 429.
	QueueDepth int
	// MaxBodyBytes caps one request body (default 16 MiB).
	MaxBodyBytes int64
	// MaxRequestParallel caps the per-job worker count a request may ask
	// for (default 1: jobs parallelize across the pool, not inside it).
	MaxRequestParallel int
	// RetryAfter is the Retry-After hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// JobRetention is how long a finished async job's status (and final
	// report) stays pollable before the janitor evicts it (default 5m).
	// Without eviction every completed job would accumulate forever.
	JobRetention time.Duration
	// MaxSessions bounds the resident incremental sessions kept for
	// requests that opt into incremental re-analysis (default 8). Beyond the
	// cap the least recently used session is evicted; an evicted app's next
	// submission simply runs cold again.
	MaxSessions int
	// SessionRetention is how long an idle incremental session survives
	// before the janitor sweeps it (default 15m). Sessions hold parse trees
	// and page memos for a whole application, so idle ones are the largest
	// resident state the daemon keeps.
	SessionRetention time.Duration
	// DefaultTenant configures unnamed and unknown tenants.
	DefaultTenant Tenant
	// Tenants configures named tenants (header X-Sqlciv-Tenant).
	Tenants map[string]Tenant
	// VerdictCache, when set, persists verdicts across jobs and restarts;
	// the server flushes it after every job and closes it on Close.
	VerdictCache *vcache.Store
	// FSRootPrefix, when nonempty, allows requests to name a resolver root
	// directory under this prefix instead of shipping inline sources.
	// Empty (the default) refuses every root request.
	FSRootPrefix string
	// Tracer, when set, is the server-level tracer behind /debug/progress
	// and /debug/vars. Per-job progress uses per-job tracers regardless.
	Tracer *obs.Tracer
	// SLO, when positive, is the latency objective: requests (and async job
	// runs) slower than this count as breaches and have their span traces
	// retained by the flight recorder. Zero disables SLO accounting.
	SLO time.Duration
	// AuditLog, when set, receives one JSON line per finished request and
	// per finished async job. Writes are serialized; nil disables the log.
	AuditLog io.Writer
	// FlightRecent sizes the flight recorder's ring of recent request/job
	// summaries (default 128); FlightRetain sizes the ring of bad entries
	// whose full span traces are retained (default 16); FlightTraceEvents
	// bounds the per-job span buffer (default 8192 events).
	FlightRecent      int
	FlightRetain      int
	FlightTraceEvents int
	// RuntimeSample is the runtime watchdog's sampling interval for the
	// go_* metrics series (default 5s).
	RuntimeSample time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxRequestParallel < 1 {
		c.MaxRequestParallel = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 5 * time.Minute
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 8
	}
	if c.SessionRetention <= 0 {
		c.SessionRetention = 15 * time.Minute
	}
	if c.Tracer == nil {
		c.Tracer = obs.New()
	}
	if c.FlightRecent <= 0 {
		c.FlightRecent = 128
	}
	if c.FlightRetain <= 0 {
		c.FlightRetain = 16
	}
	if c.FlightTraceEvents <= 0 {
		c.FlightTraceEvents = 8192
	}
	return c
}

// StatsSnapshot is the /debug/server payload.
type StatsSnapshot struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// QueueLen is the current number of jobs waiting (not yet running).
	QueueLen      int   `json:"queue_len"`
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	// JobsRetained is the current size of the pollable async-job map;
	// JobsEvicted counts finished jobs the retention janitor swept.
	JobsRetained      int   `json:"jobs_retained"`
	JobsEvicted       int64 `json:"jobs_evicted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	FlushErrors       int64 `json:"flush_errors,omitempty"`
	// VerdictCacheHits/Misses is the in-memory memo tier; DiskCacheHits/
	// Misses the persistent tier, probed first (see policy.PrepareSlice).
	VerdictCacheHits   int64 `json:"verdict_cache_hits"`
	VerdictCacheMisses int64 `json:"verdict_cache_misses"`
	DiskCacheHits      int64 `json:"disk_cache_hits"`
	DiskCacheMisses    int64 `json:"disk_cache_misses"`
	// WarmHitPct is the fraction of hotspot checks answered from either
	// cache tier instead of running the cascade: (disk hits + memo hits) /
	// (disk hits + memo hits + full computes). A warm daemon serving
	// repeat submissions should sit near 100.
	WarmHitPct   float64                `json:"warm_hit_pct"`
	InternHits   int64                  `json:"intern_hits"`
	InternMisses int64                  `json:"intern_misses"`
	InternRuns   int64                  `json:"intern_runs"`
	InternSyms   int64                  `json:"intern_syms"`
	Tenants      map[string]TenantStats `json:"tenants"`
	// Latency is the served request-latency distribution by endpoint,
	// read back from the same histograms /metrics exposes.
	Latency map[string]LatencyQuantiles `json:"latency,omitempty"`
	// Incremental is the resident-session census, present once any request
	// has opted into incremental re-analysis.
	Incremental *IncrementalStats `json:"incremental,omitempty"`
}

// IncrementalStats summarizes the daemon's incremental-session tier:
// resident sessions and the cumulative reuse their replays bought.
type IncrementalStats struct {
	Sessions        int   `json:"sessions"`
	SessionsEvicted int64 `json:"sessions_evicted"`
	FilesHashed     int64 `json:"files_hashed"`
	FilesReused     int64 `json:"files_reused"`
	FilesParsed     int64 `json:"files_parsed"`
	PagesReplayed   int64 `json:"pages_replayed"`
	PagesRecomputed int64 `json:"pages_recomputed"`
	// HotspotsReplayed verdicts were served by page replay without running
	// phase 2 at all — one tier above the verdict caches, which still see
	// the re-checked remainder.
	HotspotsReplayed  int64 `json:"hotspots_replayed"`
	HotspotsRechecked int64 `json:"hotspots_rechecked"`
	// PageReplayPct is the fraction of incremental pages served by replay;
	// a daemon fed single-file edits should sit near 100.
	PageReplayPct float64 `json:"page_replay_pct"`
}

// LatencyQuantiles summarizes one endpoint's request-latency histogram.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Server is one resident analyzer. Create with New, expose with Handler,
// stop with Close.
type Server struct {
	cfg     Config
	checker *policy.Checker
	store   *vcache.Store
	tenants *tenants

	queue chan *Job
	// admitMu serializes submissions against Close: submitters hold it
	// shared around the queue send, Close holds it exclusively while
	// closing the channel, so a late submit can never send on a closed
	// queue.
	admitMu sync.RWMutex
	wg      sync.WaitGroup
	runCtx  context.Context
	stopRun context.CancelFunc

	jobsMu sync.Mutex
	jobs   map[string]*Job

	// sessions are the resident incremental sessions (sessions.go), keyed
	// by tenant + app identity; incr accumulates their per-run reuse
	// counters for /metrics and /debug/server.
	sessMu      sync.Mutex
	sessions    map[string]*residentSession
	sessEvicted atomic.Int64
	incr        incrTotals

	nextJob      atomic.Int64
	nextReq      atomic.Int64
	submitted    atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	evicted      atomic.Int64
	rejectedFull atomic.Int64
	flushErrs    atomic.Int64
	closed       atomic.Bool

	metrics       *serverMetrics
	flight        *flightRecorder
	audit         *auditLog
	rtSampler     *metrics.RuntimeSampler
	expvarRelease func()
}

// New starts a Server: the shared warm checker is configured once here and
// reused by every job.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	checker := policy.New()
	checker.Memoize = true
	checker.Disk = cfg.VerdictCache
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		checker:  checker,
		store:    cfg.VerdictCache,
		tenants:  newTenants(cfg.DefaultTenant, cfg.Tenants),
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		sessions: map[string]*residentSession{},
		runCtx:   ctx,
		stopRun:  cancel,
	}
	s.metrics = newServerMetrics(s)
	s.flight = newFlightRecorder(cfg.FlightRecent, cfg.FlightRetain)
	s.audit = newAuditLog(cfg.AuditLog)
	s.rtSampler = metrics.StartRuntime(s.metrics.reg, cfg.RuntimeSample)
	s.expvarRelease = obs.PublishExpvar(cfg.Tracer)
	s.wg.Add(cfg.Workers + 1)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go s.janitor()
	return s
}

// Close drains the server: no new submissions are accepted, queued jobs are
// abandoned as failed, running jobs are cancelled (their units degrade
// soundly), and the verdict store is flushed and closed.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.admitMu.Lock()
	close(s.queue)
	s.admitMu.Unlock()
	// Fail whatever is still waiting in the queue; workers exit when the
	// drained channel closes.
	for j := range s.queue {
		s.failed.Add(1)
		j.finish(nil, errf(http.StatusServiceUnavailable, CodeShutdown, "server shutting down"))
	}
	s.stopRun()
	s.wg.Wait()
	s.rtSampler.Stop()
	s.expvarRelease()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() StatsSnapshot {
	vh, vm := s.checker.VerdictCacheStats()
	dh, dm := s.checker.DiskCacheStats()
	// Every full compute passes through a memo miss (the memo is the last
	// tier before the cascade), so vm counts computes and dh+vh counts
	// cache-served hotspots.
	hitPct := 0.0
	if dh+vh+vm > 0 {
		hitPct = 100 * float64(dh+vh) / float64(dh+vh+vm)
	}
	arena := grammar.ArenaStatsSnapshot()
	s.jobsMu.Lock()
	retained := len(s.jobs)
	s.jobsMu.Unlock()
	return StatsSnapshot{
		Workers:            s.cfg.Workers,
		QueueDepth:         s.cfg.QueueDepth,
		QueueLen:           len(s.queue),
		JobsSubmitted:      s.submitted.Load(),
		JobsCompleted:      s.completed.Load(),
		JobsFailed:         s.failed.Load(),
		JobsRetained:       retained,
		JobsEvicted:        s.evicted.Load(),
		RejectedQueueFull:  s.rejectedFull.Load(),
		FlushErrors:        s.flushErrs.Load(),
		VerdictCacheHits:   vh,
		VerdictCacheMisses: vm,
		DiskCacheHits:      dh,
		DiskCacheMisses:    dm,
		WarmHitPct:         hitPct,
		InternHits:         arena.InternHits,
		InternMisses:       arena.InternMisses,
		InternRuns:         arena.InternRuns,
		InternSyms:         arena.InternSyms,
		Tenants:            s.tenants.snapshot(),
		Latency:            s.latency(),
		Incremental:        s.incrementalStats(),
	}
}

// latency reads the per-endpoint quantiles back out of the request-latency
// histograms /metrics serves.
func (s *Server) latency() map[string]LatencyQuantiles {
	out := map[string]LatencyQuantiles{}
	s.metrics.requestSec.Each(func(values []string, h *metrics.Histogram) {
		if len(values) != 1 || h.Count() == 0 {
			return
		}
		out[values[0]] = LatencyQuantiles{
			Count: h.Count(),
			P50MS: h.Quantile(0.50) * 1000,
			P95MS: h.Quantile(0.95) * 1000,
			P99MS: h.Quantile(0.99) * 1000,
		}
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// MetricsSnapshot flattens every served series to name→value (histograms as
// _count/_sum/_p50/_p95/_p99), the form the bench harness records into
// BENCH_server.json.
func (s *Server) MetricsSnapshot() map[string]float64 {
	return s.metrics.reg.Snapshot()
}

// Handler returns the daemon's mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/pack", s.handlePackGet)
	mux.HandleFunc("POST /v1/pack", s.handlePackPost)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/server", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.Handle("GET /debug/flight", s.flight.handler())
	// The existing obs debug surface (expvar, pprof, run-level progress)
	// rides along under /debug/; the more specific patterns above win over
	// this subtree.
	mux.Handle("/debug/", obs.DebugHandlerMetrics(s.cfg.Tracer, s.metrics.reg.Handler()))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, "sqlcheckd\n\nPOST /v1/analyze\nPOST /v1/jobs\nGET  /v1/jobs/<id>\nGET  /v1/pack\nPOST /v1/pack\nGET  /healthz\nGET  /metrics\nGET  /debug/server\nGET  /debug/flight\n")
			return
		}
		s.writeError(w, r, errf(http.StatusNotFound, CodeNotFound, "no such endpoint: %s", r.URL.Path))
	})
	// instrument sits outside recoverMiddleware so a recovered panic is
	// still counted and audited as the 500 it became.
	return s.instrument(recoverMiddleware(mux, s))
}

// recoverMiddleware converts a handler panic into a structured 500 instead
// of killing the connection with a stack trace. The fuzz target relies on
// it as the last line of defense; in practice decodeRequest and the unit
// recovery inside the analyzer catch everything earlier.
func recoverMiddleware(next http.Handler, s *Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.writeError(w, r, errf(http.StatusInternalServerError, CodeInternal,
					"internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request) (*Request, *apiError) {
	if s.closed.Load() {
		return nil, errf(http.StatusServiceUnavailable, CodeShutdown, "server shutting down")
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	return decodeRequest(r.Body)
}

// handleAnalyze is the synchronous path: admission through the same bounded
// queue, then block until the job finishes. Untraced, so findings are
// byte-identical to an untraced library AnalyzeAppCtx run.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, aerr := s.decodeBody(w, r)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	j, aerr := s.submit(r.Header.Get(TenantHeader), req, false)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	if rec := recFrom(r); rec != nil {
		rec.job = j
	}
	res, aerr := j.await(r.Context())
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleSubmitJob is the asynchronous path: enqueue, acknowledge with the
// job id, let the client poll.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, aerr := s.decodeBody(w, r)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	j, aerr := s.submit(r.Header.Get(TenantHeader), req, true)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	if rec := recFrom(r); rec != nil {
		rec.job = j
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleJob serves one job's status. ?wait=DURATION long-polls: the
// response is sent as soon as the job completes or the wait elapses,
// whichever is first. A job is visible only to the tenant that submitted
// it; any other tenant gets the same 404 as an unknown id, so neither the
// job's contents nor its existence leaks across tenants.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok || j.tenant != orDefault(r.Header.Get(TenantHeader)) {
		s.writeError(w, r, errf(http.StatusNotFound, CodeNotFound, "no such job: %s", id))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			s.writeError(w, r, errf(http.StatusBadRequest, CodeBadRequest, "invalid wait duration: %q", waitStr))
			return
		}
		const maxWait = 30 * time.Second
		if wait > maxWait {
			wait = maxWait
		}
		select {
		case <-j.done:
		case <-time.After(wait):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// loadRoot reads an application from the server's filesystem, gated by the
// configured root prefix.
func (s *Server) loadRoot(root string) (map[string]string, *apiError) {
	if s.cfg.FSRootPrefix == "" {
		return nil, errf(http.StatusForbidden, CodeRootDenied, "filesystem roots are disabled")
	}
	// Resolve symlinks on both sides before the containment check: a
	// symlinked directory under the prefix must not reach outside it, and
	// a prefix that is itself behind a symlink must still match.
	prefix, err := filepath.Abs(s.cfg.FSRootPrefix)
	if err == nil {
		prefix, err = filepath.EvalSymlinks(prefix)
	}
	if err != nil {
		return nil, errf(http.StatusInternalServerError, CodeInternal, "bad root prefix: %v", err)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "bad root: %v", err)
	}
	abs, err = filepath.EvalSymlinks(abs)
	if err != nil {
		return nil, errf(http.StatusUnprocessableEntity, CodeBadApp, "root %q: %v", root, err)
	}
	if abs != prefix && !strings.HasPrefix(abs, prefix+string(filepath.Separator)) {
		return nil, errf(http.StatusForbidden, CodeRootDenied, "root %q is outside the allowed prefix", root)
	}
	sources := map[string]string{}
	walkErr := filepath.Walk(abs, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".php") {
			return err
		}
		// A symlinked .php file could point anywhere (ReadFile follows
		// links); only regular files under the resolved root are served.
		if info.Mode()&os.ModeSymlink != 0 {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		sources[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if walkErr != nil {
		return nil, errf(http.StatusUnprocessableEntity, CodeBadApp, "root %q: %v", root, walkErr)
	}
	if len(sources) == 0 {
		return nil, errf(http.StatusUnprocessableEntity, CodeBadApp, "no .php files under %q", root)
	}
	return sources, nil
}

// writeError writes the structured error envelope and stamps the error code
// on the request's instrumentation record, feeding the errors_total metric
// and the audit log.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, e *apiError) {
	if rec := recFrom(r); rec != nil {
		rec.errCode = e.code
	}
	if e.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
	}
	status := e.status
	// 499 (client went away) is not a real HTTP status to send; the
	// connection is gone anyway, but keep the write well-formed.
	if status == 499 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorEnvelope{Error: ErrorBody{Code: e.code, Message: e.message}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// flight_test.go exercises the degradation flight recorder end to end
// through the HTTP surface: a degraded request's span trace must stay
// retrievable after a flood of healthy traffic has scrolled it out of the
// recent ring, SLO breaches must promote traces too, and the audit log must
// carry one line per request with the retention flag.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const degradedRequest = `{
  "sources": {
    "vuln.php": "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"
  },
  "entries": ["vuln.php"],
  "budget": {"max_steps": 1}
}`

func flightSnap(t *testing.T, srv *Server) flightSnapshot {
	t.Helper()
	code, body := get(t, srv, "/debug/flight", "")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flight: status %d: %s", code, body)
	}
	var snap flightSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("flight snapshot: %v", err)
	}
	return snap
}

// TestFlightDegradedTraceSurvivesEviction is the flight recorder's core
// guarantee: the one request that degraded keeps its full span trace even
// after enough healthy requests have evicted it from the recent ring.
func TestFlightDegradedTraceSurvivesEviction(t *testing.T) {
	srv := New(Config{Workers: 1, FlightRecent: 4, FlightRetain: 2})
	defer srv.Close()

	code, body := post(t, srv, "/v1/analyze", degradedRequest)
	if code != http.StatusOK {
		t.Fatalf("degraded analyze: status %d: %s", code, body)
	}
	snap := flightSnap(t, srv)
	if len(snap.Retained) != 1 || !snap.Retained[0].Degraded {
		t.Fatalf("degraded request not retained: %+v", snap.Retained)
	}
	degradedID := snap.Retained[0].ID

	// Flood: twice the recent ring's capacity in healthy requests.
	for i := 0; i < 8; i++ {
		if code, body := post(t, srv, "/v1/analyze", goldenRequest); code != http.StatusOK {
			t.Fatalf("healthy analyze %d: status %d: %s", i, code, body)
		}
	}

	snap = flightSnap(t, srv)
	for _, e := range snap.Recent {
		if e.ID == degradedID {
			t.Fatalf("degraded entry still in the recent ring after 8 healthy requests (cap 4)")
		}
	}
	var retained *FlightEntry
	for i := range snap.Retained {
		if snap.Retained[i].ID == degradedID {
			retained = &snap.Retained[i]
		}
	}
	if retained == nil {
		t.Fatalf("degraded entry evicted from the retained ring: %+v", snap.Retained)
	}
	if !retained.Retained || retained.Degradations == 0 {
		t.Errorf("retained entry lost its markers: %+v", retained)
	}
	// The listing carries summaries; the full trace comes by id.
	if len(retained.Trace) != 0 {
		t.Errorf("listing leaked the trace body (%d events)", len(retained.Trace))
	}
	code, body = get(t, srv, "/debug/flight?id="+degradedID, "")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flight?id=%s: status %d", degradedID, code)
	}
	var entry FlightEntry
	if err := json.Unmarshal([]byte(body), &entry); err != nil {
		t.Fatal(err)
	}
	if len(entry.Trace) == 0 {
		t.Fatalf("retained entry has no span trace: %s", body)
	}
	// Healthy requests must NOT have their traces kept.
	for _, e := range snap.Recent {
		if e.ID == degradedID {
			continue
		}
		if code, body := get(t, srv, "/debug/flight?id="+e.ID, ""); code == http.StatusOK &&
			strings.Contains(body, `"trace"`) {
			t.Errorf("healthy request %s kept a trace", e.ID)
		}
	}
}

// TestFlightSLOBreachPromotes proves the -slo-ms trigger: with a 1 ns SLO
// every request breaches, so even a healthy analyze gets its trace
// retained and the breach counted.
func TestFlightSLOBreachPromotes(t *testing.T) {
	srv := New(Config{Workers: 1, SLO: time.Nanosecond})
	defer srv.Close()
	if code, body := post(t, srv, "/v1/analyze", goldenRequest); code != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", code, body)
	}
	snap := flightSnap(t, srv)
	if len(snap.Retained) == 0 || !snap.Retained[0].SLOBreach {
		t.Fatalf("SLO breach did not promote the trace: %+v", snap.Retained)
	}
	if v := srv.MetricsSnapshot()["sqlcheckd_slo_breaches_total{endpoint=/v1/analyze}"]; v < 1 {
		t.Errorf("slo_breaches_total = %v, want >= 1", v)
	}
}

// TestAuditLogLines proves -access-log: one JSON line per request, carrying
// status, endpoint, counts, and the trace-retention flag.
func TestAuditLogLines(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{Workers: 1, AuditLog: &buf})
	defer srv.Close()

	if code, _ := post(t, srv, "/v1/analyze", degradedRequest); code != http.StatusOK {
		t.Fatalf("analyze status %d", code)
	}
	if code, _ := get(t, srv, "/v1/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatalf("job poll status %d, want 404", code)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("audit lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var first auditRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("audit line does not parse: %v\n%s", err, lines[0])
	}
	if first.Kind != "request" || first.Endpoint != "/v1/analyze" || first.Status != http.StatusOK {
		t.Errorf("analyze audit line wrong: %+v", first)
	}
	if first.Degradations == 0 || !first.TraceRetained {
		t.Errorf("degraded analyze audit line missing markers: %+v", first)
	}
	if first.BytesIn == 0 || first.ID == "" || first.TS == "" {
		t.Errorf("audit line missing basics: %+v", first)
	}
	var second auditRecord
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.Endpoint != "/v1/jobs/{id}" || second.Status != http.StatusNotFound || second.Code != CodeNotFound {
		t.Errorf("404 audit line wrong: %+v", second)
	}
}

// TestAsyncJobFlightEntry proves async jobs file their own flight entries
// (kind "job") when they finish, degraded ones with traces.
func TestAsyncJobFlightEntry(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()

	code, body := post(t, srv, "/v1/jobs", degradedRequest)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, srv, "/v1/jobs/"+st.ID+"?wait=30s", "")
	if code != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("job did not finish: status %d: %s", code, body)
	}

	var entry *FlightEntry
	snap := flightSnap(t, srv)
	for i := range snap.Retained {
		if snap.Retained[i].ID == st.ID {
			entry = &snap.Retained[i]
		}
	}
	if entry == nil {
		t.Fatalf("no retained flight entry for job %s: %+v", st.ID, snap.Retained)
	}
	if entry.Kind != "job" || !entry.Degraded {
		t.Errorf("job flight entry wrong: %+v", entry)
	}
	code, body = get(t, srv, "/debug/flight?id="+st.ID, "")
	if code != http.StatusOK || !strings.Contains(body, `"trace"`) {
		t.Fatalf("job trace not retrievable: status %d: %s", code, body)
	}
}

// TestRequestIDHeader: every response carries the request id the audit log
// and flight recorder key on.
func TestRequestIDHeader(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if id := rec.Header().Get(RequestIDHeader); !strings.HasPrefix(id, "r") {
		t.Fatalf("missing %s header: %q", RequestIDHeader, id)
	}
}

// httpobs.go is the instrument middleware wrapping the daemon's mux: every
// request gets an id, its endpoint class, RED metrics (rate, errors,
// duration), a flight-recorder summary, and — when the operator enabled
// -access-log — one JSONL audit line. It sits OUTSIDE recoverMiddleware so
// even a recovered panic is counted and auditable as the 500 it became.
package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sqlciv/internal/obs"
)

// RequestIDHeader carries the server-assigned request id back to the
// client; quote it to find the request in the audit log and flight
// recorder.
const RequestIDHeader = "X-Sqlciv-Request"

// reqRecord is the per-request scratchpad threaded through the handlers via
// context: writeError stamps the error code, the analyze/submit handlers
// attach the job, and the middleware reads it all back when the response is
// done.
type reqRecord struct {
	id       string
	endpoint string
	tenant   string
	errCode  string
	job      *Job
}

type reqKey struct{}

func recFrom(r *http.Request) *reqRecord {
	rec, _ := r.Context().Value(reqKey{}).(*reqRecord)
	return rec
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// countingReader counts request-body bytes as the handler reads them.
type countingReader struct {
	r io.ReadCloser
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) Close() error { return c.r.Close() }

// classifyEndpoint maps a request onto a bounded endpoint label set, so
// metric cardinality cannot grow with client-controlled paths.
func classifyEndpoint(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/analyze":
		return "/v1/analyze"
	case p == "/v1/jobs":
		return "/v1/jobs"
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case p == "/healthz":
		return "/healthz"
	case p == "/metrics":
		return "/metrics"
	case p == "/debug/flight":
		return "/debug/flight"
	case strings.HasPrefix(p, "/debug"):
		return "/debug"
	case p == "/":
		return "index"
	}
	return "other"
}

// instrument is the outermost layer of Handler.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &reqRecord{
			id:       fmt.Sprintf("r%08d", s.nextReq.Add(1)),
			endpoint: classifyEndpoint(r),
			tenant:   orDefault(r.Header.Get(TenantHeader)),
		}
		body := &countingReader{r: r.Body}
		r.Body = body
		r = r.WithContext(context.WithValue(r.Context(), reqKey{}, rec))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(RequestIDHeader, rec.id)
		s.metrics.inflight.Add(1)

		next.ServeHTTP(sw, r)

		s.metrics.inflight.Add(-1)
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		ep := rec.endpoint
		s.metrics.requests.With(ep, strconv.Itoa(status)).Inc()
		s.metrics.requestSec.With(ep).ObserveDuration(dur)
		if n := body.n.Load(); n > 0 {
			s.metrics.requestBytes.With(ep).Add(n)
		}
		if rec.errCode != "" {
			s.metrics.errors.With(ep, rec.errCode).Inc()
		}
		breach := s.cfg.SLO > 0 && dur > s.cfg.SLO
		if breach {
			s.metrics.sloBreaches.With(ep).Inc()
		}

		// The flight recorder and audit log cover the API surface; scrapes
		// and debug pokes stay out of both.
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			return
		}
		entry := FlightEntry{
			ID:        rec.id,
			Kind:      "request",
			Time:      flightNow(),
			Tenant:    rec.tenant,
			Endpoint:  ep,
			Status:    status,
			Code:      rec.errCode,
			WallMS:    dur.Milliseconds(),
			SLOBreach: breach,
		}
		audit := auditRecord{
			TS:        entry.Time,
			Kind:      "request",
			ID:        rec.id,
			Tenant:    rec.tenant,
			Endpoint:  ep,
			Status:    status,
			Code:      rec.errCode,
			BytesIn:   body.n.Load(),
			WallMS:    entry.WallMS,
			SLOBreach: breach,
		}
		// A sync analyze carries its job's outcome on the request itself;
		// the job's bounded trace ring is eligible for promotion here. An
		// async submission only links the job id — the job records its own
		// flight entry and audit line when it finishes (see runJob).
		var ring *obs.RingSink
		if j := rec.job; j != nil {
			audit.JobID = j.id
			if ep == "/v1/analyze" {
				findings, degradations, queueMS := j.flightInfo()
				entry.Findings, entry.Degradations = findings, degradations
				entry.QueueMS = queueMS
				entry.Degraded = degradations > 0
				audit.Findings, audit.Degradations = findings, degradations
				audit.QueueMS = queueMS
				ring = j.ring
			}
		}
		audit.TraceRetained = entry.bad() && ring != nil
		s.flight.record(entry, ring)
		s.audit.write(audit)
	})
}

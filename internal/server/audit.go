// audit.go is the per-request audit log: one JSON line per finished HTTP
// request and per finished async job, written to whatever sink the operator
// pointed -access-log at. The schema is flat and stable so the lines grep
// and load into any log pipeline without parsing code.
package server

import (
	"encoding/json"
	"io"
	"sync"
)

// auditRecord is one JSONL audit line.
type auditRecord struct {
	TS   string `json:"ts"`   // RFC3339Nano, UTC
	Kind string `json:"kind"` // "request" | "job"
	// ID is the request id (kind request) or job id (kind job); JobID links
	// a request line to the job it submitted, when there was one.
	ID           string `json:"id"`
	JobID        string `json:"job_id,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
	Endpoint     string `json:"endpoint,omitempty"`
	Status       int    `json:"status,omitempty"`
	Code         string `json:"code,omitempty"`
	BytesIn      int64  `json:"bytes_in,omitempty"`
	WallMS       int64  `json:"wall_ms"`
	QueueMS      int64  `json:"queue_ms,omitempty"`
	Findings     int    `json:"findings,omitempty"`
	Degradations int    `json:"degradations,omitempty"`
	SLOBreach    bool   `json:"slo_breach,omitempty"`
	// TraceRetained marks units whose span trace the flight recorder kept;
	// the trace is at /debug/flight?id=<id>.
	TraceRetained bool `json:"trace_retained,omitempty"`
}

// auditLog serializes line writes; a nil *auditLog logs nothing, so call
// sites never branch.
type auditLog struct {
	mu sync.Mutex
	w  io.Writer
}

func newAuditLog(w io.Writer) *auditLog {
	if w == nil {
		return nil
	}
	return &auditLog{w: w}
}

func (a *auditLog) write(rec auditRecord) {
	if a == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	a.w.Write(line)
	a.mu.Unlock()
}

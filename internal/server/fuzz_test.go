// fuzz_test.go throws arbitrary bytes at the daemon's front door. The
// invariant: whatever a client posts — malformed JSON, truncated bodies,
// unknown fields, oversized payloads, bogus resolver roots, non-PHP noise —
// the daemon answers a known status with a well-formed JSON body (the
// report on 2xx, the structured error envelope otherwise) and never
// panics. `make fuzz-smoke` burns this target alongside the parser and
// automata fuzzers.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sqlciv/internal/budget"
	"sqlciv/internal/server"
)

// fuzzStatuses are the only statuses the front door may answer.
var fuzzStatuses = map[int]bool{
	http.StatusOK:                    true, // well-formed app analyzed
	http.StatusBadRequest:            true, // malformed request
	http.StatusForbidden:             true, // filesystem root refused
	http.StatusRequestEntityTooLarge: true, // over MaxBodyBytes
	http.StatusUnprocessableEntity:   true, // app failed to analyze
	http.StatusTooManyRequests:       true, // queue or tenant cap
	http.StatusServiceUnavailable:    true, // shutting down
}

func FuzzServerRequest(f *testing.F) {
	// Seeds: one valid request, then the malformed shapes the decoder must
	// refuse cleanly.
	f.Add([]byte(`{"sources":{"a.php":"<?php mysql_query(\"SELECT \" . $_GET['x']); ?>"},"entries":["a.php"]}`))
	f.Add([]byte(`{"sources":{"a.php":"<?php echo 1; ?>"}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"sources":{"a.php":"x"},"entries":["a.php"]} trailing garbage`))
	f.Add([]byte(`{"sources":{"a.php":"x"},"root":"/also/a/root"}`))
	f.Add([]byte(`{"root":"/etc"}`))
	f.Add([]byte(`{"root":"../../../etc/passwd"}`))
	f.Add([]byte(`{"sources":{"":"empty path"},"entries":[""]}`))
	f.Add([]byte(`{"sources":{"a.php":"x"},"entries":["missing.php"]}`))
	f.Add([]byte(`{"sources":{"a.php":"x"},"entries":["a.php"],"budget":{"max_steps":-1}}`))
	f.Add([]byte(`{"sources":{"a.php":"x"},"entries":["a.php"],"budget":{"timeout_ms":9223372036854775807}}`))
	f.Add([]byte(`{"sources":{"a.php":"\xff\xfe not utf8"},"entries":["a.php"]}`))
	f.Add([]byte(`{"sources":{"a.php":"<?php while(1){} ?>"},"entries":["a.php"],"options":{"parallel":999999}}`))
	f.Add(bytes.Repeat([]byte(`{"sources":{"a.php":"p"}}`), 100))

	// One shared server for the whole run: small body cap so the fuzzer can
	// reach the 413 path, a tiny step ceiling so adversarial PHP cannot make
	// iterations slow, and no persistent store (nothing worth persisting).
	srv := server.New(server.Config{
		Workers:      2,
		QueueDepth:   8,
		MaxBodyBytes: 1 << 16,
		DefaultTenant: server.Tenant{
			Limits: budget.Limits{MaxSteps: 2000},
		},
	})
	handler := srv.Handler()
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range []string{"/v1/analyze", "/v1/jobs"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req) // recoverMiddleware turns any panic into 500; none allowed
			status := rec.Code
			if path == "/v1/jobs" && status == http.StatusAccepted {
				status = http.StatusOK
			}
			if !fuzzStatuses[status] {
				t.Fatalf("POST %s %q: status %d outside the contract (body %q)",
					path, truncate(body), rec.Code, truncate(rec.Body.Bytes()))
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("POST %s %q: content type %q, want application/json", path, truncate(body), ct)
			}
			var payload map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("POST %s %q: %d body is not a JSON object: %v\n%s",
					path, truncate(body), rec.Code, err, truncate(rec.Body.Bytes()))
			}
			if rec.Code >= 400 {
				env, ok := payload["error"].(map[string]any)
				if !ok {
					t.Fatalf("POST %s %q: %d without error envelope: %s",
						path, truncate(body), rec.Code, truncate(rec.Body.Bytes()))
				}
				if code, _ := env["code"].(string); code == "" {
					t.Fatalf("POST %s %q: %d error without a code", path, truncate(body), rec.Code)
				}
				if msg, _ := env["message"].(string); strings.Contains(msg, "goroutine ") {
					t.Fatalf("POST %s %q: error message leaks a stack trace", path, truncate(body))
				}
			}
		}
	})
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// TestOversizedBody413 covers the one path the in-process fuzz harness
// cannot reach realistically: a body larger than MaxBodyBytes arriving over
// a real connection must answer 413 with the structured envelope (the
// MaxBytesReader trips mid-decode).
func TestOversizedBody413(t *testing.T) {
	_, client := newTestService(t, server.Config{Workers: 1, MaxBodyBytes: 1 << 16})
	ctx := context.Background()
	// Oversized body → 413 with the structured envelope.
	httpClient := http.DefaultClient
	// Well-formed JSON bigger than the cap, so the decoder reads up to the
	// MaxBytesReader limit instead of failing on a syntax error first.
	body := []byte(`{"sources":{"a.php":"` + strings.Repeat("x", 1<<17) + `"},"entries":["a.php"]}`)
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		client.BaseURL+"/v1/analyze", bytes.NewReader(body))
	resp, err := httpClient.Do(req)
	if err != nil {
		t.Fatalf("oversized POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
		t.Fatalf("413 body not a structured envelope: %v", err)
	}
}

// soak_test.go hammers one small resident server from many concurrent
// clients (run it under -race: the Makefile's race target includes this
// package). Mixed SQL+XSS apps flow through a 2-worker bounded queue from
// two tenants — one unlimited, one with a deliberately tiny budget ceiling
// — and the test pins three properties of the daemon under contention:
//
//  1. determinism: every served result for an app is DeepEqual to the
//     in-process reference, no matter which worker ran it or what else was
//     in flight;
//  2. isolation: the starved tenant's budget trips never bleed into the
//     unlimited tenant's runs (budget state is per-request; degraded
//     verdicts are never cached);
//  3. amortization: with every app submitted many times, most hotspot
//     checks answer from the warm verdict-cache tiers.
package server_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sqlciv"
	"sqlciv/internal/analysis"
	"sqlciv/internal/budget"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/server"
	"sqlciv/internal/xss"
)

// soakApps are three small mixed SQL+XSS applications: enough hotspots to
// exercise the checker, small enough that the soak stays fast under -race.
func soakApps() []*corpus.App {
	return []*corpus.App{
		{
			Name: "soak-guestbook",
			Sources: map[string]string{"guestbook.php": `<?php
$name = $_GET['name'];
$msg = $_POST['message'];
echo "<h1>Guestbook</h1>";
echo "<div class='entry'>$name said: $msg</div>";
mysql_query("INSERT INTO guestbook (name, msg) VALUES ('$name', '$msg')");
mysql_query("SELECT * FROM guestbook ORDER BY id DESC LIMIT 20");
`},
			Entries: []string{"guestbook.php"},
		},
		{
			Name: "soak-profile",
			Sources: map[string]string{"profile.php": `<?php
$id = $_GET['id'];
if (preg_match('/^[0-9]+$/', $id)) {
  $row = mysql_query("SELECT * FROM users WHERE id = $id");
  echo "<p>User #$id</p>";
} else {
  echo "<p>bad id</p>";
}
$bio = $_GET['bio'];
mysql_query("UPDATE users SET bio = '$bio' WHERE id = $id");
echo "<textarea name='bio'>$bio</textarea>";
`},
			Entries: []string{"profile.php"},
		},
		{
			Name: "soak-search",
			Sources: map[string]string{"search.php": `<?php
$q = addslashes($_GET['q']);
mysql_query("SELECT * FROM posts WHERE body LIKE '%$q%'");
echo "<p>Results for <b>" . htmlspecialchars($_GET['q']) . "</b></p>";
$sort = $_GET['sort'];
mysql_query("SELECT * FROM posts ORDER BY $sort");
echo "<a href='search.php?sort=$sort'>resort</a>";
`},
			Entries: []string{"search.php"},
		},
	}
}

// soakReference is the in-process ground truth for one app: the SQL
// analysis plus the XSS audit, both unbudgeted and untraced.
type soakReference struct {
	app *corpus.App
	res *core.AppResult
	xss []xss.Finding
}

func buildReferences(t *testing.T) []soakReference {
	t.Helper()
	var refs []soakReference
	for _, app := range soakApps() {
		resolver := analysis.NewMapResolver(app.Sources)
		res, err := core.AnalyzeAppCtx(context.Background(), resolver, app.Entries, core.Options{})
		if err != nil {
			t.Fatalf("reference %s: %v", app.Name, err)
		}
		xf, err := xss.Audit(resolver, app.Entries, analysis.Options{})
		if err != nil {
			t.Fatalf("reference xss %s: %v", app.Name, err)
		}
		if len(res.Findings) == 0 || len(xf) == 0 {
			t.Fatalf("soak fixture %s is not mixed: %d sql findings, %d xss findings",
				app.Name, len(res.Findings), len(xf))
		}
		refs = append(refs, soakReference{app: app, res: res, xss: xf})
	}
	return refs
}

// checkServed compares one served payload against its reference,
// tolerating only the async path's trace span ids.
func checkServed(ref soakReference, got *sqlciv.AnalyzeResponse, async bool) error {
	rec := got.CoreResult()
	if async {
		scrubSpanIDs(rec)
	}
	if !reflect.DeepEqual(rec.Findings, ref.res.Findings) {
		return fmt.Errorf("%s: findings diverged\nserved: %#v\nlocal:  %#v",
			ref.app.Name, rec.Findings, ref.res.Findings)
	}
	if len(rec.Degradations) != 0 || len(ref.res.Degradations) != 0 {
		if !reflect.DeepEqual(rec.Degradations, ref.res.Degradations) {
			return fmt.Errorf("%s: degradations diverged", ref.app.Name)
		}
	}
	if len(got.XSS) != len(ref.xss) {
		return fmt.Errorf("%s: %d served xss findings, want %d", ref.app.Name, len(got.XSS), len(ref.xss))
	}
	for i, wf := range got.XSS {
		if cf := wf.Core(); !reflect.DeepEqual(cf, ref.xss[i]) {
			return fmt.Errorf("%s: xss finding %d diverged: served %#v, local %#v",
				ref.app.Name, i, cf, ref.xss[i])
		}
	}
	return nil
}

// TestSoakConcurrentTenants is the race-mode soak.
func TestSoakConcurrentTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const (
		bigClients   = 4
		smallClients = 2
		iters        = 3
	)
	refs := buildReferences(t)
	starved := corpus.EVE() // small corpus subject the starved tenant submits

	_, client := newTestService(t, server.Config{
		Workers:    2,
		QueueDepth: 64,
		Tenants: map[string]server.Tenant{
			"big":   {},
			"small": {Limits: budget.Limits{MaxSteps: 50}},
		},
	})
	srvStats := func() *sqlciv.ServerStats {
		st, err := client.ServerStats(context.Background())
		if err != nil {
			t.Fatalf("ServerStats: %v", err)
		}
		return st
	}
	base := srvStats()

	var wg sync.WaitGroup
	errc := make(chan error, bigClients*iters*len(refs)+smallClients*iters)
	smallResults := make([][]*sqlciv.AnalyzeResponse, smallClients)

	// Unlimited tenant: every client loops over all apps, alternating the
	// sync and async paths, asserting reference equality on every response.
	for c := 0; c < bigClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bc := &sqlciv.Client{BaseURL: client.BaseURL, Tenant: "big"}
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				for ai, ref := range refs {
					req := &sqlciv.AnalyzeRequest{
						Sources: ref.app.Sources,
						Entries: ref.app.Entries,
						Options: sqlciv.AnalyzeRequestOptions{XSS: true},
					}
					async := (c+it+ai)%2 == 1
					var res *sqlciv.AnalyzeResponse
					var err error
					if async {
						var st *sqlciv.JobStatus
						if st, err = bc.SubmitJob(ctx, req); err == nil {
							res, err = bc.WaitJob(ctx, st.ID)
						}
					} else {
						res, err = bc.Analyze(ctx, req)
					}
					if err != nil {
						errc <- fmt.Errorf("big client %d %s: %v", c, ref.app.Name, err)
						continue
					}
					if err := checkServed(ref, res, async); err != nil {
						errc <- fmt.Errorf("big client %d: %w", c, err)
					}
				}
			}
		}(c)
	}

	// Starved tenant: repeat submissions of a corpus subject under a
	// 50-step ceiling. Every run must degrade (never a silent pass), and
	// repeats must degrade identically (step metering is deterministic).
	for c := 0; c < smallClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sc := &sqlciv.Client{BaseURL: client.BaseURL, Tenant: "small"}
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				res, err := sc.Analyze(ctx, &sqlciv.AnalyzeRequest{
					Sources: starved.Sources, Entries: starved.Entries,
				})
				if err != nil {
					errc <- fmt.Errorf("small client %d: %v", c, err)
					continue
				}
				if res.Verified {
					errc <- fmt.Errorf("small client %d: budget-starved run served as verified", c)
				}
				if res.DegradedHotspots == 0 && res.DegradedPages == 0 {
					errc <- fmt.Errorf("small client %d: 50-step run did not degrade", c)
				}
				smallResults[c] = append(smallResults[c], res)
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Repeat degradations are deterministic across all small-tenant runs.
	var first *sqlciv.AnalyzeResponse
	for c := range smallResults {
		for _, res := range smallResults[c] {
			if first == nil {
				first = res
				continue
			}
			if !reflect.DeepEqual(res.Findings, first.Findings) ||
				!reflect.DeepEqual(res.Degradations, first.Degradations) {
				t.Errorf("small tenant degraded runs diverged between repeats")
			}
		}
	}

	st := srvStats()
	big, small := st.Tenants["big"], st.Tenants["small"]
	if big.Jobs != bigClients*iters*int64(len(refs)) {
		t.Errorf("big tenant jobs = %d, want %d", big.Jobs, bigClients*iters*len(refs))
	}
	if small.Jobs != smallClients*iters {
		t.Errorf("small tenant jobs = %d, want %d", small.Jobs, smallClients*iters)
	}
	// Isolation: all budget trips belong to the starved tenant.
	if big.BudgetTrips != 0 {
		t.Errorf("budget trips bled into the unlimited tenant: %d", big.BudgetTrips)
	}
	if small.BudgetTrips == 0 {
		t.Error("starved tenant recorded no budget trips")
	}
	if big.InFlight != 0 || small.InFlight != 0 {
		t.Errorf("in-flight not drained: big %d, small %d", big.InFlight, small.InFlight)
	}

	// Amortization: across (clients × iters) repeats of the same apps, the
	// warm verdict-cache tiers must answer at least half of all hotspot
	// checks (only the first submission of each app computes).
	dh := st.DiskCacheHits - base.DiskCacheHits
	vh := st.VerdictCacheHits - base.VerdictCacheHits
	vm := st.VerdictCacheMisses - base.VerdictCacheMisses
	if total := dh + vh + vm; total > 0 {
		warm := 100 * float64(dh+vh) / float64(total)
		t.Logf("soak warm hit rate: %.1f%% (disk %d + memo %d of %d checks)", warm, dh, vh, total)
		if warm < 50 {
			t.Errorf("soak warm hit rate %.1f%% < 50%%", warm)
		}
	} else {
		t.Error("soak recorded no hotspot checks")
	}
}

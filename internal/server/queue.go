// queue.go is the bounded job queue behind both endpoints. Sync and async
// submissions travel the same path — a fixed worker pool draining a
// fixed-capacity channel — so the overload behavior is uniform: when the
// queue is full the submission is refused immediately with 429 and a
// Retry-After hint, never buffered without bound. Each job owns a tracer
// feeding a bounded ring of span events: GET /v1/jobs/<id> serves a live
// obs snapshot of the analysis in flight, and the ring is what the flight
// recorder promotes when the request degrades, errors, or breaches the SLO.
package server

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/obs"
	"sqlciv/internal/xss"
)

// Job is one queued analysis.
type Job struct {
	id     string
	tenant string
	state  *tenantState
	req    *Request
	// tracer observes the run for the progress endpoint and feeds ring, the
	// bounded span buffer the flight recorder promotes when the job goes
	// bad; per-job so one job's events never mix into another's.
	tracer *obs.Tracer
	ring   *obs.RingSink
	// traced marks async jobs: they are pollable (id map + progress
	// snapshots) and their findings carry span ids on the wire. Sync jobs
	// trace too — the flight recorder needs the spans — but their wire
	// responses scrub span ids so the payload stays byte-identical to an
	// untraced library run.
	traced bool

	mu       sync.Mutex
	phase    string // StateQueued | StateRunning | StateDone | StateFailed
	result   *Response
	err      *apiError
	done     chan struct{}
	enqueued time.Time
	started  time.Time
	// doneAt is when the job reached a terminal state; the janitor evicts
	// the job from the server's map JobRetention after it.
	doneAt time.Time
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.phase = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// flightInfo snapshots the terminal result counts for the HTTP-side flight
// and audit recording of a sync job.
func (j *Job) flightInfo() (findings, degradations int, queueMS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result != nil {
		findings = len(j.result.Findings)
		degradations = j.result.DegradedHotspots + j.result.DegradedPages
	}
	if !j.started.IsZero() {
		queueMS = j.started.Sub(j.enqueued).Milliseconds()
	}
	return
}

func (j *Job) finish(res *Response, err *apiError) {
	j.mu.Lock()
	if err != nil {
		j.phase, j.err = StateFailed, err
	} else {
		j.phase, j.result = StateDone, res
	}
	j.doneAt = time.Now()
	// The request (sources up to MaxBodyBytes) is dead weight once the job
	// is terminal; release it even while the status stays pollable.
	j.req = nil
	j.mu.Unlock()
	j.state.release()
	close(j.done)
}

// Status renders the job for the wire. While the job runs it carries the
// tracer's live progress snapshot; once done it carries the final report.
func (j *Job) Status() *JobStatus {
	j.mu.Lock()
	st := &JobStatus{ID: j.id, Tenant: j.tenant, State: j.phase,
		Result: j.result, Error: j.err.body()}
	j.mu.Unlock()
	if st.State == StateRunning && j.traced {
		snap := j.tracer.Progress()
		st.Progress = &ProgressSnapshot{
			ElapsedMS:        snap.ElapsedMS,
			PagesDone:        snap.PagesDone,
			PagesTotal:       snap.PagesTotal,
			PagesDegraded:    snap.PagesDegraded,
			HotspotsDone:     snap.HotspotsDone,
			HotspotsTotal:    snap.HotspotsTotal,
			HotspotsDegraded: snap.HotspotsDegraded,
			Findings:         snap.Findings,
			Counters:         snap.Counters,
		}
	}
	return st
}

func (e *apiError) body() *ErrorBody {
	if e == nil {
		return nil
	}
	return &ErrorBody{Code: e.code, Message: e.message}
}

// submit creates a job for req under tenant and enqueues it, enforcing the
// tenant in-flight cap and the queue bound. traced marks async jobs (they
// become pollable and expose span ids on the wire); every job traces into
// its bounded ring regardless, so the flight recorder can keep the span
// timeline of a request that goes bad.
func (s *Server) submit(tenant string, req *Request, traced bool) (*Job, *apiError) {
	st := s.tenants.get(tenant)
	if !st.acquire() {
		return nil, errf(429, CodeTenantLimit,
			"tenant %q has %d jobs in flight (cap %d)", orDefault(tenant), st.inFlight.Load(), st.cfg.MaxInFlight)
	}
	j := &Job{
		id:       jobID(s.nextJob.Add(1)),
		tenant:   orDefault(tenant),
		state:    st,
		req:      req,
		traced:   traced,
		phase:    StateQueued,
		done:     make(chan struct{}),
		enqueued: time.Now(),
	}
	j.ring = obs.NewRingSink(s.cfg.FlightTraceEvents)
	j.tracer = obs.New(j.ring)
	if traced {
		// Only async jobs are pollable, so only they enter the id map; a
		// sync submitter holds the *Job directly and nothing is retained
		// once its handler returns.
		s.jobsMu.Lock()
		s.jobs[j.id] = j
		s.jobsMu.Unlock()
	}
	s.admitMu.RLock()
	if s.closed.Load() {
		s.admitMu.RUnlock()
		st.release()
		s.dropJob(j.id)
		return nil, errf(http.StatusServiceUnavailable, CodeShutdown, "server shutting down")
	}
	select {
	case s.queue <- j:
		s.admitMu.RUnlock()
		st.jobs.Add(1)
		s.submitted.Add(1)
		return j, nil
	default:
		s.admitMu.RUnlock()
		st.release()
		s.dropJob(j.id)
		s.rejectedFull.Add(1)
		return nil, errf(429, CodeQueueFull,
			"job queue is full (%d queued, %d workers)", cap(s.queue), s.cfg.Workers)
	}
}

func (s *Server) dropJob(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

// jobID mints one job id: a monotonic sequence (log-friendly ordering) plus
// 48 random bits so ids cannot be enumerated — a client that never saw an
// id cannot poll someone else's job by counting.
func jobID(seq int64) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy means no unguessable id; refuse the submission rather
		// than mint an enumerable one (recoverMiddleware turns this into a
		// structured 500).
		panic(fmt.Sprintf("job id entropy: %v", err))
	}
	return fmt.Sprintf("j%08d-%x", seq, b)
}

// sweepJobs evicts finished jobs that reached a terminal state at or before
// cutoff. Queued and running jobs are never touched.
func (s *Server) sweepJobs(cutoff time.Time) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	for id, j := range s.jobs {
		j.mu.Lock()
		expired := (j.phase == StateDone || j.phase == StateFailed) && !j.doneAt.After(cutoff)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
			s.evicted.Add(1)
		}
	}
}

// janitor periodically sweeps finished jobs older than the retention window
// so the id map cannot grow without bound on a long-running daemon, and
// idle incremental sessions past theirs (sessions hold a whole app's parse
// trees and page memos — the daemon's largest resident state).
func (s *Server) janitor() {
	defer s.wg.Done()
	interval := s.cfg.JobRetention / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-t.C:
			now := time.Now()
			s.sweepJobs(now.Add(-s.cfg.JobRetention))
			s.sweepSessions(now.Add(-s.cfg.SessionRetention))
		}
	}
}

func orDefault(tenant string) string {
	if tenant == "" {
		return DefaultTenantName
	}
	return tenant
}

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one analysis under the job's tenant budget and the shared
// warm checker, then publishes the result — and files the job's telemetry:
// queue-wait and run-time histograms for every job, plus a flight entry and
// audit line for async jobs (a sync job's outcome rides its HTTP request's
// entry instead, so nothing is recorded twice).
func (s *Server) runJob(j *Job) {
	j.setRunning()
	wait := j.started.Sub(j.enqueued)
	s.metrics.queueWaitSec.ObserveDuration(wait)
	res, err := s.analyze(j)
	dur := time.Since(j.started)
	s.metrics.jobRunSec.ObserveDuration(dur)
	if err == nil {
		j.state.budgetTrips.Add(int64(res.DegradedHotspots + res.DegradedPages))
		j.state.findings.Add(int64(len(res.Findings)))
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	if j.traced {
		s.recordAsyncJob(j, res, err, wait, dur)
	}
	j.finish(res, err)
}

// recordAsyncJob files the flight entry and audit line for a finished async
// job. Runs before finish so the entry is visible by the time the job's
// status flips to done.
func (s *Server) recordAsyncJob(j *Job, res *Response, aerr *apiError, wait, dur time.Duration) {
	entry := FlightEntry{
		ID:        j.id,
		Kind:      "job",
		Time:      flightNow(),
		Tenant:    j.tenant,
		WallMS:    dur.Milliseconds(),
		QueueMS:   wait.Milliseconds(),
		SLOBreach: s.cfg.SLO > 0 && dur > s.cfg.SLO,
	}
	if aerr != nil {
		entry.Status = aerr.status
		entry.Code = aerr.code
	} else {
		entry.Findings = len(res.Findings)
		entry.Degradations = res.DegradedHotspots + res.DegradedPages
		entry.Degraded = entry.Degradations > 0
	}
	s.flight.record(entry, j.ring)
	s.audit.write(auditRecord{
		TS:            entry.Time,
		Kind:          "job",
		ID:            j.id,
		Tenant:        j.tenant,
		Status:        entry.Status,
		Code:          entry.Code,
		WallMS:        entry.WallMS,
		QueueMS:       entry.QueueMS,
		Findings:      entry.Findings,
		Degradations:  entry.Degradations,
		SLOBreach:     entry.SLOBreach,
		TraceRetained: entry.bad(),
	})
}

// analyze maps a wire request onto the library: resolver, options, tenant
// budget clamp, the server's shared checker, and — when requested — the XSS
// audit over the same resolver.
func (s *Server) analyze(j *Job) (*Response, *apiError) {
	req := j.req
	sources := req.Sources
	if req.Root != "" {
		loaded, aerr := s.loadRoot(req.Root)
		if aerr != nil {
			return nil, aerr
		}
		sources = loaded
	}
	entries := req.Entries
	if len(entries) == 0 {
		entries = guessEntries(sources)
	}
	if len(entries) == 0 {
		return nil, errf(422, CodeBadApp, "no entry pages (no sources, or every file looks like an include)")
	}
	parallel := req.Options.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > s.cfg.MaxRequestParallel {
		parallel = s.cfg.MaxRequestParallel
	}
	reqLimits := req.Budget.Limits()
	effLimits := clampLimits(reqLimits, j.state.cfg.Limits)
	if effLimits != reqLimits {
		j.state.clamped.Add(1)
		s.metrics.clamped.Inc()
	}
	opts := core.Options{
		Parallel:         parallel,
		ParallelHotspots: parallel,
		Budget:           effLimits,
		Tracer:           j.tracer,
		Checker:          s.checker,
	}
	opts.Analysis.DisableGuardRefinement = req.Options.NoGuardRefinement
	opts.Analysis.MagicQuotes = req.Options.MagicQuotes
	if req.Options.Incremental {
		// The resident session turns a repeat submission into a hash sweep
		// plus a delta re-check: unchanged pages replay their memoized
		// outcome without re-parsing or re-checking anything.
		opts.Session = s.session(sessionKey(j.tenant, req))
	}

	resolver := analysis.NewMapResolver(sources)
	res, err := core.AnalyzeAppCtx(s.runCtx, resolver, entries, opts)
	if err != nil {
		// AnalyzeAppCtx errors only on genuine input failures (an entry
		// that cannot be loaded) — the client's fault, structured as such.
		return nil, errf(422, CodeBadApp, "%v", err)
	}
	m := s.metrics
	m.pagesAnalyzed.Add(int64(len(res.Pages)))
	m.pagesDegraded.Add(int64(res.DegradedPages))
	m.hotspotsDegraded.Add(int64(res.DegradedHotspots))
	m.findings.Add(int64(len(res.Findings)))
	for reason, n := range res.DegradationsByReason() {
		m.degradations.With(reason).Add(int64(n))
	}
	m.analysisSec.With("string_analysis").Observe(res.StringAnalysisWall.Seconds())
	m.analysisSec.With("check").Observe(res.CheckWall.Seconds())
	m.slabBytes.Set(float64(res.GrammarSlabBytes))
	if res.Incr != nil {
		s.incr.add(res.Incr)
	}
	var xssFindings []xss.Finding
	if req.Options.XSS {
		xssFindings, err = xss.Audit(resolver, entries, opts.Analysis)
		if err != nil {
			return nil, errf(422, CodeBadApp, "xss audit: %v", err)
		}
	}
	// Make this job's verdicts durable (and visible to future cold starts)
	// before answering; flush errors cost persistence, never correctness.
	if s.store != nil {
		if ferr := s.store.Flush(); ferr != nil {
			s.flushErrs.Add(1)
		}
	}
	// Sync responses scrub span ids (j.traced false): the payload must stay
	// byte-identical to an untraced library run even though the job WAS
	// traced for the flight recorder. Async responses keep them — they link
	// into the job's progress snapshots.
	out := responseFromResult(res, xssFindings, j.traced)
	if req.Options.EmitPack {
		// Compile the warm result's hotspot languages into a runtime policy
		// pack. Degraded or cap-exceeding hotspots become unavailable entries
		// that fail closed at enforcement time, so a degraded analysis still
		// yields a sound (if stricter) pack.
		pack, pstats, perr := core.BuildPack(res, core.PackOptions{})
		if perr != nil {
			return nil, errf(http.StatusInternalServerError, CodeInternal, "pack compilation: %v", perr)
		}
		out.Pack = pack
		out.PackStats = &pstats
	}
	return out, nil
}

// await blocks until the job finishes or ctx is done. The job keeps running
// (and caching) even when the waiter gives up.
func (j *Job) await(ctx context.Context) (*Response, *apiError) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, j.err
	case <-ctx.Done():
		return nil, errf(499, CodeShutdown, "client went away: %v", ctx.Err())
	}
}

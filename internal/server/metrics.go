// metrics.go wires the daemon into the obs/metrics registry: RED metrics
// for every endpoint (rate, errors, duration histograms), queue and
// admission counters, per-tenant accounting, and the analysis-side series
// (hotspot checks, verdict-cache tiers, degradations by cause, arena
// interning). Process state that already lives in atomics — queue length,
// job counters, cache stats, tenant snapshots — is exported through
// func-backed series read at scrape time, so serving /metrics never double
// counts and recording on the request path stays a handful of atomic ops.
package server

import (
	"sort"

	"sqlciv/internal/grammar"
	"sqlciv/internal/obs/metrics"
)

// serverMetrics owns the registry and the hot-path instruments the request
// and job paths record into directly.
type serverMetrics struct {
	reg *metrics.Registry

	// HTTP surface (recorded by the instrument middleware).
	requests     *metrics.CounterVec   // {endpoint, status}
	requestSec   *metrics.HistogramVec // {endpoint}
	requestBytes *metrics.CounterVec   // {endpoint}
	errors       *metrics.CounterVec   // {endpoint, code}
	sloBreaches  *metrics.CounterVec   // {endpoint}
	inflight     *metrics.Gauge

	// Job lifecycle (recorded by runJob for sync and async alike).
	queueWaitSec *metrics.Histogram
	jobRunSec    *metrics.Histogram

	// Analysis results (recorded after each completed job).
	findings         *metrics.Counter
	degradations     *metrics.CounterVec // {reason}
	pagesAnalyzed    *metrics.Counter
	pagesDegraded    *metrics.Counter
	hotspotsDegraded *metrics.Counter
	analysisSec      *metrics.HistogramVec // {phase}
	slabBytes        *metrics.Gauge
	clamped          *metrics.Counter
}

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.New()
	m := &serverMetrics{
		reg: r,
		requests: r.CounterVec("sqlcheckd_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "status"),
		requestSec: r.HistogramVec("sqlcheckd_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			nil, "endpoint"),
		requestBytes: r.CounterVec("sqlcheckd_request_bytes_total",
			"Request body bytes read, by endpoint.",
			"endpoint"),
		errors: r.CounterVec("sqlcheckd_errors_total",
			"Structured error envelopes returned, by endpoint and error code.",
			"endpoint", "code"),
		sloBreaches: r.CounterVec("sqlcheckd_slo_breaches_total",
			"Requests (and async job runs) that exceeded the configured latency SLO.",
			"endpoint"),
		inflight: r.Gauge("sqlcheckd_inflight_requests",
			"HTTP requests currently being served."),
		queueWaitSec: r.Histogram("sqlcheckd_job_queue_wait_seconds",
			"Seconds a job waited in the admission queue before a worker picked it up.",
			nil),
		jobRunSec: r.Histogram("sqlcheckd_job_run_seconds",
			"Seconds a worker spent running one job (analysis wall time).",
			nil),
		findings: r.Counter("sqlciv_findings_total",
			"Findings returned across all jobs."),
		degradations: r.CounterVec("sqlciv_degradations_total",
			"Analysis units (pages or hotspots) degraded to unknown, by budget reason.",
			"reason"),
		pagesAnalyzed: r.Counter("sqlciv_pages_analyzed_total",
			"Entry pages analyzed across all jobs."),
		pagesDegraded: r.Counter("sqlciv_pages_degraded_total",
			"Entry pages whose phase-1 analysis was cut short."),
		hotspotsDegraded: r.Counter("sqlciv_hotspots_degraded_total",
			"Hotspot checks degraded to VerdictUnknown."),
		analysisSec: r.HistogramVec("sqlciv_analysis_seconds",
			"Analysis wall seconds per job, by phase (string_analysis, check).",
			nil, "phase"),
		slabBytes: r.Gauge("sqlciv_grammar_slab_bytes",
			"Arena slab bytes of the most recent job's grammars."),
		clamped: r.Counter("sqlcheckd_budget_clamped_total",
			"Requests whose budget was tightened by the tenant ceiling."),
	}

	// Queue and worker-pool state, read live at scrape time.
	r.GaugeFunc("sqlcheckd_queue_len",
		"Jobs waiting in the admission queue (not yet running).",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("sqlcheckd_queue_capacity",
		"Admission queue capacity.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("sqlcheckd_workers",
		"Analysis worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	r.CounterFunc("sqlcheckd_jobs_submitted_total",
		"Jobs accepted into the queue (sync and async).",
		func() float64 { return float64(s.submitted.Load()) })
	r.CounterFunc("sqlcheckd_jobs_completed_total",
		"Jobs that finished with a result.",
		func() float64 { return float64(s.completed.Load()) })
	r.CounterFunc("sqlcheckd_jobs_failed_total",
		"Jobs that finished with an error.",
		func() float64 { return float64(s.failed.Load()) })
	r.CounterFunc("sqlcheckd_jobs_evicted_total",
		"Finished async jobs swept by the retention janitor.",
		func() float64 { return float64(s.evicted.Load()) })
	r.CounterFunc("sqlcheckd_rejected_queue_full_total",
		"Submissions refused with 429 because the queue was full.",
		func() float64 { return float64(s.rejectedFull.Load()) })
	r.CounterFunc("sqlcheckd_flush_errors_total",
		"Verdict-store flushes that failed (persistence lost, correctness kept).",
		func() float64 { return float64(s.flushErrs.Load()) })
	r.GaugeFunc("sqlcheckd_jobs_retained",
		"Finished async jobs still pollable (retention window).",
		func() float64 {
			s.jobsMu.Lock()
			n := len(s.jobs)
			s.jobsMu.Unlock()
			return float64(n)
		})

	// Per-tenant accounting off the tenants registry snapshot.
	tenantSeries := func(pick func(TenantStats) float64) func() []metrics.Labeled {
		return func() []metrics.Labeled {
			snap := s.tenants.snapshot()
			names := make([]string, 0, len(snap))
			for name := range snap {
				names = append(names, name)
			}
			sort.Strings(names)
			out := make([]metrics.Labeled, 0, len(names))
			for _, name := range names {
				out = append(out, metrics.Labeled{Values: []string{name}, V: pick(snap[name])})
			}
			return out
		}
	}
	tl := []string{"tenant"}
	r.GaugeVecFunc("sqlcheckd_tenant_inflight", "Tenant jobs queued or running.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.InFlight) }))
	r.CounterVecFunc("sqlcheckd_tenant_jobs_total", "Tenant submissions accepted.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.Jobs) }))
	r.CounterVecFunc("sqlcheckd_tenant_rejected_total", "Tenant submissions refused at the in-flight cap.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.Rejected) }))
	r.CounterVecFunc("sqlcheckd_tenant_budget_trips_total", "Tenant analysis units degraded under budget.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.BudgetTrips) }))
	r.CounterVecFunc("sqlcheckd_tenant_findings_total", "Findings returned to the tenant.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.Findings) }))
	r.CounterVecFunc("sqlcheckd_tenant_clamped_total", "Tenant requests whose budget hit the ceiling clamp.",
		tl, tenantSeries(func(t TenantStats) float64 { return float64(t.Clamped) }))

	// Analysis substrate: the shared checker's caches and the process-global
	// grammar interns.
	r.CounterFunc("sqlciv_hotspots_checked_total",
		"Hotspot checks executed by the shared checker (cache hits included).",
		func() float64 { return float64(s.checker.ChecksRun()) })
	r.CounterFunc("sqlciv_verdict_memo_hits_total",
		"In-memory verdict-memo hits.",
		func() float64 { h, _ := s.checker.VerdictCacheStats(); return float64(h) })
	r.CounterFunc("sqlciv_verdict_memo_misses_total",
		"In-memory verdict-memo misses (each is one full cascade).",
		func() float64 { _, m := s.checker.VerdictCacheStats(); return float64(m) })
	r.CounterFunc("sqlciv_verdict_disk_hits_total",
		"Persistent verdict-cache hits.",
		func() float64 { h, _ := s.checker.DiskCacheStats(); return float64(h) })
	r.CounterFunc("sqlciv_verdict_disk_misses_total",
		"Persistent verdict-cache misses.",
		func() float64 { _, m := s.checker.DiskCacheStats(); return float64(m) })
	r.GaugeFunc("sqlciv_verdict_cache_warm_pct",
		"Percent of hotspot checks answered from either verdict-cache tier.",
		func() float64 {
			vh, vm := s.checker.VerdictCacheStats()
			dh, _ := s.checker.DiskCacheStats()
			if dh+vh+vm == 0 {
				return 0
			}
			return 100 * float64(dh+vh) / float64(dh+vh+vm)
		})
	if s.store != nil {
		r.CounterFunc("sqlciv_vcache_puts_total",
			"Verdicts handed to the persistent store this process.",
			func() float64 { return float64(s.store.CacheStats().Puts) })
		r.CounterFunc("sqlciv_vcache_written_total",
			"Verdict-store entries durably written by flushes.",
			func() float64 { return float64(s.store.CacheStats().Written) })
		r.CounterFunc("sqlciv_vcache_errors_total",
			"Verdict-store read errors (treated as misses).",
			func() float64 { return float64(s.store.CacheStats().Errors) })
	}
	// Incremental re-analysis: resident sessions and the reuse their page
	// replays bought (one tier above the verdict caches, which only see the
	// hotspots that were actually re-checked).
	r.GaugeFunc("sqlciv_incr_sessions",
		"Resident incremental sessions (apps kept warm for replay).",
		func() float64 { return float64(s.sessionCount()) })
	r.CounterFunc("sqlciv_incr_sessions_evicted_total",
		"Incremental sessions evicted by the LRU cap or the idle-retention sweep.",
		func() float64 { return float64(s.sessEvicted.Load()) })
	r.CounterFunc("sqlciv_incr_files_hashed_total",
		"Source files content-hashed by incremental runs (every file, every run).",
		func() float64 { return float64(s.incr.filesHashed.Load()) })
	r.CounterFunc("sqlciv_incr_files_reused_total",
		"Parse-tree loads served by the cross-run parse cache.",
		func() float64 { return float64(s.incr.filesReused.Load()) })
	r.CounterFunc("sqlciv_incr_files_parsed_total",
		"Files actually re-parsed by incremental runs (content changed).",
		func() float64 { return float64(s.incr.filesParsed.Load()) })
	r.CounterFunc("sqlciv_incr_pages_replayed_total",
		"Pages whose unchanged dependency closure replayed a memoized outcome.",
		func() float64 { return float64(s.incr.pagesReplayed.Load()) })
	r.CounterFunc("sqlciv_incr_pages_recomputed_total",
		"Pages incremental runs re-analyzed because their closure changed.",
		func() float64 { return float64(s.incr.pagesRecomputed.Load()) })
	r.CounterFunc("sqlciv_incr_hotspots_replayed_total",
		"Hotspot verdicts served by page replay without entering phase 2.",
		func() float64 { return float64(s.incr.hotspotsReplayed.Load()) })
	r.CounterFunc("sqlciv_incr_hotspots_rechecked_total",
		"Hotspot checks incremental runs actually re-ran.",
		func() float64 { return float64(s.incr.hotspotsRechecked.Load()) })
	r.GaugeFunc("sqlciv_incr_page_replay_pct",
		"Percent of incremental pages served by replay instead of recomputation.",
		func() float64 { return s.incr.pageReplayPct() })

	r.CounterFunc("sqlciv_arena_intern_hits_total",
		"Terminal-run intern hits in the grammar arena.",
		func() float64 { return float64(grammar.ArenaStatsSnapshot().InternHits) })
	r.CounterFunc("sqlciv_arena_intern_misses_total",
		"Terminal-run intern misses in the grammar arena.",
		func() float64 { return float64(grammar.ArenaStatsSnapshot().InternMisses) })
	r.GaugeFunc("sqlciv_arena_intern_runs",
		"Distinct terminal runs interned.",
		func() float64 { return float64(grammar.ArenaStatsSnapshot().InternRuns) })
	r.GaugeFunc("sqlciv_arena_intern_syms",
		"Distinct symbols interned.",
		func() float64 { return float64(grammar.ArenaStatsSnapshot().InternSyms) })

	return m
}

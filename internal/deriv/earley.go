package deriv

import "sqlciv/internal/grammar"

// parse is the extension of Earley's algorithm the paper describes in
// §3.2.2: it parses a sentential form in which some positions are variables
// ranging over sets of reference symbols. A variable position scans
// successfully against an expected reference symbol (terminal or
// nonterminal) when that symbol is in the variable's candidate set; a
// reference-symbol position scans only against itself. Parsing succeeds
// when start ⇒* some instantiation of the input form.
//
// Item sets are deduplicated through the reference grammar's compact item
// id space (refTables.prodBase): an item is the pair of its (nt, prod, dot)
// slot and its origin, packed into one uint64 and kept in a reusable
// open-addressing set per input position — no struct hashing, and the
// scratch tables amortize across the tens of thousands of parses one
// derivability check can run.
func (s *session) parse(start grammar.Sym, input form, sets [][]bool) bool {
	s.parses++
	s.b.Step(1)
	c := s.c
	g := c.ref
	tab := c.tab

	type item = earleyItem
	n := len(input)
	sc := s.earley
	sc.reset(n + 1)
	add := func(k int, it item) {
		slot := tab.prodBase[int(it.nt)-grammar.NumTerminals][it.prod] + it.dot
		key := uint64(uint32(slot))<<32 | uint64(uint32(it.origin))
		if sc.sets[k].add(key) {
			s.b.Step(1)
			s.items++
			sc.order[k] = append(sc.order[k], it)
		}
	}
	matches := func(k int, expected grammar.Sym) bool {
		v := input[k]
		if id, isVar := varID(v); isVar {
			return sets[id][int(expected)]
		}
		return grammar.Sym(v) == expected
	}
	for pi := 0; pi < g.NumProdsOf(start); pi++ {
		add(0, item{start, int32(pi), 0, 0})
	}
	// Top-level: the whole input may be the single symbol `start` itself
	// (F(X) ⇒* F(X) in zero steps).
	if n == 1 && matches(0, start) {
		return true
	}
	for k := 0; k <= n; k++ {
		for idx := 0; idx < len(sc.order[k]); idx++ {
			it := sc.order[k][idx]
			rhs := g.Rhs(it.nt, int(it.prod))
			if int(it.dot) < len(rhs) {
				next := rhs[it.dot]
				// scan: both terminals and nonterminals can be scanned —
				// a nonterminal in the derived sentential form stays
				// unexpanded when it matches the input position.
				if k < n && matches(k, next) {
					add(k+1, item{it.nt, it.prod, it.dot + 1, it.origin})
				}
				if !grammar.IsTerminal(next) {
					for pi := 0; pi < g.NumProdsOf(next); pi++ {
						add(k, item{next, int32(pi), 0, int32(k)})
					}
					if tab.nullable[int(next)-grammar.NumTerminals] {
						add(k, item{it.nt, it.prod, it.dot + 1, it.origin})
					}
				}
				continue
			}
			for _, back := range sc.order[it.origin] {
				brhs := g.Rhs(back.nt, int(back.prod))
				if int(back.dot) < len(brhs) && brhs[back.dot] == it.nt {
					add(k, item{back.nt, back.prod, back.dot + 1, back.origin})
				}
			}
		}
	}
	for _, it := range sc.order[n] {
		if it.nt == start && it.origin == 0 && int(it.dot) == len(g.Rhs(start, int(it.prod))) {
			return true
		}
	}
	return false
}

// earleyItem is one Earley item: a dotted reference production plus the
// input position its recognition started at.
type earleyItem struct {
	nt     grammar.Sym
	prod   int32
	dot    int32
	origin int32
}

// earleyScratch is the reusable parse workspace: one packed-key set and one
// discovery-ordered item list per input position.
type earleyScratch struct {
	sets  []u64set
	order [][]earleyItem
}

func (sc *earleyScratch) reset(m int) {
	for len(sc.sets) < m {
		sc.sets = append(sc.sets, u64set{})
		sc.order = append(sc.order, nil)
	}
	for i := 0; i < m; i++ {
		sc.sets[i].reset()
		sc.order[i] = sc.order[i][:0]
	}
}

// u64set is a small open-addressing hash set of nonzero uint64 keys with
// linear probing; reset keeps the table allocated.
type u64set struct {
	tab []uint64
	n   int
}

func (s *u64set) reset() {
	if s.n > 0 {
		for i := range s.tab {
			s.tab[i] = 0
		}
		s.n = 0
	}
}

func mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// add inserts k and reports whether it was absent.
func (s *u64set) add(k uint64) bool {
	if len(s.tab) == 0 {
		s.tab = make([]uint64, 32)
	} else if s.n*2 >= len(s.tab) {
		old := s.tab
		s.tab = make([]uint64, len(old)*2)
		s.n = 0
		for _, v := range old {
			if v != 0 {
				s.insert(v)
			}
		}
	}
	return s.insert(k + 1) // +1: reserve 0 as the empty slot
}

func (s *u64set) insert(k uint64) bool {
	mask := uint64(len(s.tab) - 1)
	h := mix64(k) & mask
	for {
		v := s.tab[h]
		if v == 0 {
			s.tab[h] = k
			s.n++
			return true
		}
		if v == k {
			return false
		}
		h = (h + 1) & mask
	}
}

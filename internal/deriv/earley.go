package deriv

import "sqlciv/internal/grammar"

// parse is the extension of Earley's algorithm the paper describes in
// §3.2.2: it parses a sentential form in which some positions are variables
// ranging over sets of reference symbols. A variable position scans
// successfully against an expected reference symbol (terminal or
// nonterminal) when that symbol is in the variable's candidate set; a
// reference-symbol position scans only against itself. Parsing succeeds
// when start ⇒* some instantiation of the input form.
func (c *Checker) parse(start grammar.Sym, input form, sets [][]bool) bool {
	c.parses++
	g := c.ref
	c.ensureNullable()

	type item struct {
		nt     grammar.Sym
		prod   int
		dot    int
		origin int
	}
	n := len(input)
	sets2 := make([]map[item]bool, n+1)
	order := make([][]item, n+1)
	for i := range sets2 {
		sets2[i] = map[item]bool{}
	}
	add := func(k int, it item) {
		if !sets2[k][it] {
			sets2[k][it] = true
			order[k] = append(order[k], it)
		}
	}
	matches := func(k int, expected grammar.Sym) bool {
		v := input[k]
		if id, isVar := varID(v); isVar {
			return sets[id][int(expected)]
		}
		return grammar.Sym(v) == expected
	}
	for pi := range g.Prods(start) {
		add(0, item{start, pi, 0, 0})
	}
	// Top-level: the whole input may be the single symbol `start` itself
	// (F(X) ⇒* F(X) in zero steps).
	if n == 1 && matches(0, start) {
		return true
	}
	for k := 0; k <= n; k++ {
		for idx := 0; idx < len(order[k]); idx++ {
			it := order[k][idx]
			rhs := g.Prods(it.nt)[it.prod]
			if it.dot < len(rhs) {
				next := rhs[it.dot]
				// scan: both terminals and nonterminals can be scanned —
				// a nonterminal in the derived sentential form stays
				// unexpanded when it matches the input position.
				if k < n && matches(k, next) {
					add(k+1, item{it.nt, it.prod, it.dot + 1, it.origin})
				}
				if !grammar.IsTerminal(next) {
					for pi := range g.Prods(next) {
						add(k, item{next, pi, 0, k})
					}
					if c.nullable[int(next)-grammar.NumTerminals] {
						add(k, item{it.nt, it.prod, it.dot + 1, it.origin})
					}
				}
				continue
			}
			for _, back := range order[it.origin] {
				brhs := g.Prods(back.nt)[back.prod]
				if back.dot < len(brhs) && brhs[back.dot] == it.nt {
					add(k, item{back.nt, back.prod, back.dot + 1, back.origin})
				}
			}
		}
	}
	for _, it := range order[n] {
		if it.nt == start && it.origin == 0 && it.dot == len(g.Prods(start)[it.prod]) {
			return true
		}
	}
	return false
}

// nullable computation for the reference grammar, cached on the Checker.
func (c *Checker) ensureNullable() {
	if c.nullable != nil {
		return
	}
	g := c.ref
	c.nullable = make([]bool, g.NumNTs())
	changed := true
	for changed {
		changed = false
		g.ForEachProd(func(lhs grammar.Sym, rhs []grammar.Sym) {
			li := int(lhs) - grammar.NumTerminals
			if c.nullable[li] {
				return
			}
			for _, s := range rhs {
				if grammar.IsTerminal(s) || !c.nullable[int(s)-grammar.NumTerminals] {
					return
				}
			}
			c.nullable[li] = true
			changed = true
		})
	}
}

package deriv

import "sqlciv/internal/grammar"

// flatten inlines every nonterminal of sub that is neither labeled, nor in
// a cycle, nor the root, producing for each remaining "variable" the list
// of its productions as sentential forms over terminals and variables.
// Inlining is what makes Thiemann-style derivability effective on the
// dataflow-shaped grammars the string analysis emits: concatenation chains
// collapse into the long literal fragments a reference parse can actually
// recognize.
func (c *Checker) flatten(sub *grammar.Grammar, root grammar.Sym) (vars []grammar.Sym, rules [][]form, ok bool) {
	n := sub.NumNTs()
	inCycle := sub.InCycle()
	isVar := make([]bool, n)
	for i := 0; i < n; i++ {
		nt := grammar.Sym(grammar.NumTerminals + i)
		if nt == root || inCycle[i] || sub.LabelOf(nt) != 0 {
			isVar[i] = true
		}
	}
	varIdx := make([]int, n)
	for i := range varIdx {
		varIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if isVar[i] {
			varIdx[i] = len(vars)
			vars = append(vars, grammar.Sym(grammar.NumTerminals+i))
		}
	}

	// expansions[i] for non-variable i: all expanded forms (cross product of
	// constituent expansions), capped.
	const maxFormsPerNT = 16
	expansions := make([][]form, n)
	var expand func(i int) bool
	visiting := make([]bool, n)
	expand = func(i int) bool {
		if expansions[i] != nil || isVar[i] {
			return true
		}
		if visiting[i] {
			// Acyclicity of non-variables guarantees this cannot happen;
			// bail conservatively if it somehow does.
			return false
		}
		visiting[i] = true
		defer func() { visiting[i] = false }()
		nt := grammar.Sym(grammar.NumTerminals + i)
		var out []form
		for pi := 0; pi < sub.NumProdsOf(nt); pi++ {
			partial := []form{{}}
			for _, s := range sub.Rhs(nt, pi) {
				var pieces []form
				if grammar.IsTerminal(s) {
					pieces = []form{{int32(s)}}
				} else {
					j := int(s) - grammar.NumTerminals
					if isVar[j] {
						pieces = []form{{int32(-(varIdx[j] + 1))}}
					} else {
						if !expand(j) {
							return false
						}
						pieces = expansions[j]
					}
				}
				var next []form
				for _, p := range partial {
					for _, q := range pieces {
						if len(p)+len(q) > c.MaxFormLen {
							return false
						}
						f := make(form, 0, len(p)+len(q))
						f = append(f, p...)
						f = append(f, q...)
						next = append(next, f)
						if len(next) > maxFormsPerNT {
							return false
						}
					}
				}
				partial = next
			}
			out = append(out, partial...)
			if len(out) > maxFormsPerNT {
				return false
			}
		}
		expansions[i] = out
		if expansions[i] == nil {
			expansions[i] = []form{} // empty language: no forms
		}
		return true
	}

	total := 0
	rules = make([][]form, len(vars))
	for i := 0; i < n; i++ {
		if !isVar[i] {
			continue
		}
		nt := grammar.Sym(grammar.NumTerminals + i)
		for pi := 0; pi < sub.NumProdsOf(nt); pi++ {
			partial := []form{{}}
			okRHS := true
			for _, s := range sub.Rhs(nt, pi) {
				var pieces []form
				if grammar.IsTerminal(s) {
					pieces = []form{{int32(s)}}
				} else {
					j := int(s) - grammar.NumTerminals
					if isVar[j] {
						pieces = []form{{int32(-(varIdx[j] + 1))}}
					} else {
						if !expand(j) {
							return nil, nil, false
						}
						pieces = expansions[j]
					}
				}
				var next []form
				for _, p := range partial {
					for _, q := range pieces {
						if len(p)+len(q) > c.MaxFormLen {
							return nil, nil, false
						}
						f := make(form, 0, len(p)+len(q))
						f = append(f, p...)
						f = append(f, q...)
						next = append(next, f)
					}
				}
				partial = next
				if len(partial) > maxFormsPerNT*4 {
					return nil, nil, false
				}
			}
			if okRHS {
				rules[varIdx[i]] = append(rules[varIdx[i]], partial...)
				total += len(partial)
				if total > c.MaxFlattenProds {
					return nil, nil, false
				}
			}
		}
	}
	return vars, rules, true
}

// Package deriv implements the grammar-derivability check of paper §3.2.2:
// a conservative approximation of context-free language inclusion after
// Thiemann. A generated grammar G1 is derivable from a reference grammar G2
// (Definition 3.2) when a single mapping F from G1's nonterminals to G2
// symbols exists such that every production X → α of G1 satisfies
// F(X) ⇒*_{G2} F*(α).
//
// Derivability implies inclusion (Lemma 3.3), and — because F witnesses a
// reference nonterminal covering each labeled nonterminal inside a
// reference derivation of the whole query — it also witnesses syntactic
// confinement (Definition 2.2) for every labeled nonterminal. The checker
// is budgeted: when flattening or the mapping search exceeds its budget it
// answers "not derivable", which the policy layer treats as a violation —
// the sound direction.
package deriv

import (
	"sync"

	"sqlciv/internal/budget"
	"sqlciv/internal/grammar"
	"sqlciv/internal/obs"
)

// Checker holds a reference grammar and search budgets. The reference
// tables (nullable sets, Earley item-slot ids) are derived once per
// reference grammar and shared; after New returns, a Checker is read-only
// and safe for concurrent Derivable calls.
type Checker struct {
	ref *grammar.Grammar
	// MaxFlattenProds caps the flattened production count.
	MaxFlattenProds int
	// MaxFormLen caps the length of a flattened sentential form.
	MaxFormLen int
	// MaxParses caps the number of Earley runs in refinement + search.
	MaxParses int

	tab *refTables
}

// refTables are the precomputed, immutable per-reference-grammar tables:
// the nullable set and a compact id space for Earley items. The item
// (nt, prod, dot) gets slot prodBase[nt][prod] + dot, a dense id that the
// parser uses to index slice-backed item sets instead of hashing structs.
type refTables struct {
	nullable []bool
	prodBase [][]int32
	numSlots int
}

// tableCache memoizes refTables per reference grammar instance; reference
// grammars (sqlgram.Get) are immutable singletons, so pointer identity is a
// sound key.
var tableCache sync.Map // *grammar.Grammar -> *refTables

func tablesFor(ref *grammar.Grammar) *refTables {
	if t, ok := tableCache.Load(ref); ok {
		return t.(*refTables)
	}
	t := &refTables{nullable: computeNullable(ref)}
	n := ref.NumNTs()
	t.prodBase = make([][]int32, n)
	for i := 0; i < n; i++ {
		nt := grammar.Sym(grammar.NumTerminals + i)
		np := ref.NumProdsOf(nt)
		base := make([]int32, np)
		for pi := 0; pi < np; pi++ {
			base[pi] = int32(t.numSlots)
			t.numSlots += len(ref.Rhs(nt, pi)) + 1 // one slot per dot position
		}
		t.prodBase[i] = base
	}
	actual, _ := tableCache.LoadOrStore(ref, t)
	return actual.(*refTables)
}

func computeNullable(g *grammar.Grammar) []bool {
	nullable := make([]bool, g.NumNTs())
	changed := true
	for changed {
		changed = false
		g.ForEachProd(func(lhs grammar.Sym, rhs []grammar.Sym) {
			li := int(lhs) - grammar.NumTerminals
			if nullable[li] {
				return
			}
			for _, s := range rhs {
				if grammar.IsTerminal(s) || !nullable[int(s)-grammar.NumTerminals] {
					return
				}
			}
			nullable[li] = true
			changed = true
		})
	}
	return nullable
}

// New returns a Checker against ref with default budgets.
func New(ref *grammar.Grammar) *Checker {
	return &Checker{ref: ref, MaxFlattenProds: 4000, MaxFormLen: 600, MaxParses: 50000, tab: tablesFor(ref)}
}

// form is a sentential form over the reference alphabet plus variables:
// values >= 0 encode terminals / would-be ref symbols, values < 0 encode
// variable ids as -(id+1).
type form []int32

func varID(v int32) (int, bool) {
	if v < 0 {
		return int(-v - 1), true
	}
	return 0, false
}

// session carries the mutable state of one Derivable call — the parse
// budget counter, the caller's resource budget, and the reusable Earley
// scratch — so a single Checker can serve many goroutines at once.
type session struct {
	c      *Checker
	b      *budget.Budget
	parses int
	items  int64 // Earley items admitted across all parses
	earley *earleyScratch
}

// scratchPool recycles Earley workspaces across Derivable calls: one check
// can run tens of thousands of parses, and the per-position item sets and
// order lists dominate its allocation profile when rebuilt per call.
var scratchPool = sync.Pool{New: func() any { return &earleyScratch{} }}

// Derivable reports whether the sub-grammar of g rooted at root is
// derivable from the checker's reference grammar with F(root) drawn from
// targets (reference nonterminals). It returns the witnessing target when
// derivable.
func (c *Checker) Derivable(g *grammar.Grammar, root grammar.Sym, targets []grammar.Sym) (grammar.Sym, bool) {
	return c.DerivableB(g, root, targets, nil)
}

// DerivableB is Derivable metered by b: every Earley run and every item it
// admits count one step each, so adversarial forms trip the step or
// deadline budget instead of stalling a worker. The Checker's own
// MaxParses/MaxFlatten budgets answer "not derivable" (conservative); b
// panics with *budget.Exceeded for the hotspot boundary to turn into an
// explicit unknown verdict. A nil b is unlimited.
func (c *Checker) DerivableB(g *grammar.Grammar, root grammar.Sym, targets []grammar.Sym, b *budget.Budget) (grammar.Sym, bool) {
	return c.DerivableT(g, root, targets, b, nil)
}

// DerivableT is DerivableB observed by sp: the session's Earley traffic —
// parses run and items admitted across refinement and search — flushes
// onto the span when the check finishes, whichever way it exits
// ("earley.parses", "earley.items"). The per-item cost stays one integer
// increment next to the existing budget probe. A nil sp records nothing.
func (c *Checker) DerivableT(g *grammar.Grammar, root grammar.Sym, targets []grammar.Sym, b *budget.Budget, sp *obs.Span) (grammar.Sym, bool) {
	s := &session{c: c, b: b, earley: scratchPool.Get().(*earleyScratch)}
	defer func() {
		scratchPool.Put(s.earley)
		sp.Count("earley.parses", int64(s.parses))
		sp.Count("earley.items", s.items)
	}()
	sub, remap := g.Extract(root)
	nroot := remap[root]

	vars, rules, ok := c.flatten(sub, nroot)
	if !ok {
		return 0, false
	}
	nvars := len(vars)
	rootVar := -1
	for i, v := range vars {
		if v == nroot {
			rootVar = i
		}
	}
	if rootVar < 0 {
		// Root was inlined away: it had exactly one production and no
		// self-reference; re-add it as a variable with that single rule.
		// flatten never drops the root, so this is unreachable; guard
		// anyway.
		return 0, false
	}

	// Candidate sets: every ref nonterminal, plus every terminal (a
	// variable that only ever derives one byte can map to that byte).
	refNTs := c.ref.NumNTs()
	candOf := make([][]bool, nvars)
	for i := range candOf {
		cand := make([]bool, grammar.NumTerminals+refNTs)
		for j := range cand {
			cand[j] = true
		}
		candOf[i] = cand
	}
	// Root candidates restricted to targets.
	rootCand := make([]bool, grammar.NumTerminals+refNTs)
	for _, t := range targets {
		rootCand[int(t)] = true
	}
	candOf[rootVar] = rootCand

	// ---- fixpoint refinement -------------------------------------------
	changed := true
	for changed {
		changed = false
		for vi := 0; vi < nvars; vi++ {
			for ci := range candOf[vi] {
				if !candOf[vi][ci] {
					continue
				}
				if !s.feasible(grammar.Sym(ci), rules[vi], candOf) {
					candOf[vi][ci] = false
					changed = true
				}
			}
			if countTrue(candOf[vi]) == 0 {
				return 0, false
			}
		}
		if s.parses > c.MaxParses {
			return 0, false
		}
	}

	// ---- single-mapping search -------------------------------------------
	assign := make([]int32, nvars)
	for i := range assign {
		assign[i] = -1
	}
	if s.search(0, nvars, assign, candOf, rules) {
		return grammar.Sym(assign[rootVar]), true
	}
	return 0, false
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// feasible reports whether cand ⇒* every production form of one variable,
// with variable occurrences ranging over their current candidate sets.
func (s *session) feasible(cand grammar.Sym, prods []form, candOf [][]bool) bool {
	if grammar.IsTerminal(cand) {
		// A terminal maps only productions that are exactly one symbol
		// which can be that terminal.
		for _, f := range prods {
			if len(f) != 1 {
				return false
			}
			if !symCanBe(f[0], cand, candOf) {
				return false
			}
		}
		return true
	}
	for _, f := range prods {
		if !s.parse(cand, f, candOf) {
			return false
		}
	}
	return true
}

func symCanBe(v int32, want grammar.Sym, candOf [][]bool) bool {
	if id, isVar := varID(v); isVar {
		return candOf[id][int(want)]
	}
	return grammar.Sym(v) == want
}

// search assigns variables depth-first, verifying all productions whose
// variables are fully assigned as soon as possible.
func (s *session) search(vi, nvars int, assign []int32, candOf [][]bool, rules [][]form) bool {
	if s.parses > s.c.MaxParses {
		return false
	}
	if vi == nvars {
		return true
	}
	for ci := range candOf[vi] {
		if !candOf[vi][ci] {
			continue
		}
		assign[vi] = int32(ci)
		ok := true
		// Verify this variable's own productions under the partial
		// assignment (unassigned vars keep their sets).
		single := singletonSets(assign, candOf)
		for _, f := range rules[vi] {
			if !s.verifyProd(grammar.Sym(ci), f, single) {
				ok = false
				break
			}
		}
		// Re-verify earlier variables' productions that mention vi.
		if ok {
			for pv := 0; pv < vi && ok; pv++ {
				if !mentions(rules[pv], vi) {
					continue
				}
				for _, f := range rules[pv] {
					if !s.verifyProd(grammar.Sym(assign[pv]), f, single) {
						ok = false
						break
					}
				}
			}
		}
		if ok && s.search(vi+1, nvars, assign, candOf, rules) {
			return true
		}
		assign[vi] = -1
		if s.parses > s.c.MaxParses {
			return false
		}
	}
	return false
}

func mentions(prods []form, varIdx int) bool {
	for _, f := range prods {
		for _, s := range f {
			if id, isVar := varID(s); isVar && id == varIdx {
				return true
			}
		}
	}
	return false
}

// singletonSets narrows candidate sets to assigned singletons.
func singletonSets(assign []int32, candOf [][]bool) [][]bool {
	out := make([][]bool, len(candOf))
	for i := range candOf {
		if assign[i] >= 0 {
			s := make([]bool, len(candOf[i]))
			s[assign[i]] = true
			out[i] = s
		} else {
			out[i] = candOf[i]
		}
	}
	return out
}

func (s *session) verifyProd(cand grammar.Sym, f form, sets [][]bool) bool {
	if grammar.IsTerminal(cand) {
		if len(f) != 1 {
			return false
		}
		return symCanBe(f[0], cand, sets)
	}
	return s.parse(cand, f, sets)
}

package deriv

import (
	"testing"

	"sqlciv/internal/grammar"
	"sqlciv/internal/sqlgram"
)

// buildQueryGrammar builds a generated-style grammar:
// query -> "SELECT * FROM t WHERE id='" X "'" ; X -> digits
func buildQueryGrammar(xRules func(g *grammar.Grammar, x grammar.Sym)) (*grammar.Grammar, grammar.Sym, grammar.Sym) {
	g := grammar.New()
	q := g.NewNT("query")
	x := g.NewNT("X")
	g.AddLabel(x, grammar.Direct)
	rhs := grammar.TermString("SELECT * FROM t WHERE id='")
	rhs = append(rhs, x)
	rhs = append(rhs, grammar.T('\''))
	g.Add(q, rhs...)
	xRules(g, x)
	g.SetStart(q)
	return g, q, x
}

func TestDerivableSafeLiteral(t *testing.T) {
	sql := sqlgram.Get()
	g, q, _ := buildQueryGrammar(func(g *grammar.Grammar, x grammar.Sym) {
		g.AddString(x, "42")
		g.AddString(x, "hello")
	})
	c := New(sql.G)
	tgt, ok := c.Derivable(g, q, []grammar.Sym{sql.Start})
	if !ok {
		t.Fatal("plain literal content should be derivable")
	}
	if tgt != sql.Start {
		t.Fatalf("root mapped to %v", sql.G.Name(tgt))
	}
}

func TestNotDerivableQuoteEscape(t *testing.T) {
	sql := sqlgram.Get()
	g, q, _ := buildQueryGrammar(func(g *grammar.Grammar, x grammar.Sym) {
		g.AddString(x, "1'; DROP TABLE t; --")
	})
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); ok {
		t.Fatal("attack content must not be derivable")
	}
}

func TestDerivableRecursiveValueList(t *testing.T) {
	// query -> "SELECT * FROM t WHERE id IN (" L ")" ; L -> 1 | 1, L
	// The labeled recursive L maps onto the reference ValueList.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	l := g.NewNT("L")
	g.AddLabel(l, grammar.Direct)
	rhs := grammar.TermString("SELECT * FROM t WHERE id IN (")
	rhs = append(rhs, l, grammar.T(')'))
	g.Add(q, rhs...)
	g.AddString(l, "1")
	lrhs := grammar.TermString("1, ")
	g.Add(l, append(lrhs, l)...)
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok {
		t.Fatal("recursive IN-list should be derivable")
	}
}

func TestNotDerivableSigmaStar(t *testing.T) {
	// X -> any byte string: nothing in the reference grammar covers Σ* in
	// literal position when unquoted.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	x := g.NewNT("X")
	g.AddLabel(x, grammar.Direct)
	rhs := grammar.TermString("SELECT * FROM t WHERE id=")
	g.Add(q, append(rhs, x)...)
	g.Add(x)
	for c := 0; c < 256; c++ {
		g.Add(x, grammar.T(byte(c)), x)
	}
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); ok {
		t.Fatal("sigma* in unquoted position must not be derivable")
	}
}

func TestDerivableNumericPosition(t *testing.T) {
	// Unquoted numeric position with digit-only recursion: X maps to
	// Digits / NumLit.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	x := g.NewNT("X")
	g.AddLabel(x, grammar.Direct)
	rhs := grammar.TermString("SELECT * FROM t WHERE id=")
	g.Add(q, append(rhs, x)...)
	g.AddString(x, "7")
	g.Add(x, grammar.T('7'), x)
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok {
		t.Fatal("digit recursion in numeric position should be derivable")
	}
}

func TestBudgetExhaustionIsConservative(t *testing.T) {
	sql := sqlgram.Get()
	g, q, _ := buildQueryGrammar(func(g *grammar.Grammar, x grammar.Sym) {
		g.AddString(x, "42")
	})
	c := New(sql.G)
	c.MaxParses = 1
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); ok {
		t.Fatal("budget exhaustion must answer not-derivable")
	}
}

func TestFlattenCapIsConservative(t *testing.T) {
	sql := sqlgram.Get()
	g, q, _ := buildQueryGrammar(func(g *grammar.Grammar, x grammar.Sym) {
		g.AddString(x, "42")
	})
	c := New(sql.G)
	c.MaxFormLen = 3
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); ok {
		t.Fatal("flatten cap must answer not-derivable")
	}
}

func TestDerivabilityImpliesMembership(t *testing.T) {
	// Lemma 3.3 spot-check: when derivable, the generated strings really
	// are reference queries.
	sql := sqlgram.Get()
	g, q, _ := buildQueryGrammar(func(g *grammar.Grammar, x grammar.Sym) {
		g.AddString(x, "abc")
	})
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok {
		t.Fatal("should be derivable")
	}
	w, _ := g.WitnessString(q)
	if !sql.ParsesQuery(w) {
		t.Fatalf("derivable grammar produced a non-query %q", w)
	}
}

func TestTerminalCandidate(t *testing.T) {
	// A nonterminal deriving exactly one byte can map to that terminal.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	x := g.NewNT("X")
	g.AddLabel(x, grammar.Direct)
	g.AddString(x, "7")
	rhs := grammar.TermString("SELECT * FROM t WHERE id=4")
	g.Add(q, append(rhs, x)...)
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok {
		t.Fatal("digit suffix should be derivable (47 is a number)")
	}
}

func TestMultipleVariablesInteract(t *testing.T) {
	// Two labeled nonterminals in one query: both must map consistently.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	a := g.NewNT("A")
	b := g.NewNT("B")
	g.AddLabel(a, grammar.Direct)
	g.AddLabel(b, grammar.Direct)
	g.AddString(a, "alpha")
	g.AddString(b, "42")
	rhs := grammar.TermString("SELECT * FROM t WHERE a='")
	rhs = append(rhs, a)
	rhs = append(rhs, grammar.TermString("' AND b=")...)
	rhs = append(rhs, b)
	g.Add(q, rhs...)
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok {
		t.Fatal("two-variable query should be derivable")
	}
}

func TestTargetRestriction(t *testing.T) {
	// Restricting the root target to a non-matching nonterminal fails.
	sql := sqlgram.Get()
	g := grammar.New()
	q := g.NewNT("query")
	g.AddString(q, "SELECT * FROM t")
	c := New(sql.G)
	if _, ok := c.Derivable(g, q, []grammar.Sym{sql.NumLit}); ok {
		t.Fatal("a full query cannot map to NumLit")
	}
	if tgt, ok := c.Derivable(g, q, []grammar.Sym{sql.Start}); !ok || tgt != sql.Start {
		t.Fatal("full query should map to the start symbol")
	}
}

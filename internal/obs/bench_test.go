package obs

import (
	"io"
	"testing"
)

// BenchmarkDisabledSpan is the acceptance gate for the nil-safe no-op
// default: the full instrumentation pattern an engine unit performs
// (child span, a couple of counter flushes, end) must cost low
// single-digit nanoseconds when tracing is off, so the hot loops can stay
// instrumented unconditionally.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	parent := tr.Start("run", "r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := parent.Child("fixpoint", "intersect")
		sp.Count("intersect.items", int64(i))
		sp.Count("rels.pops", int64(i))
		sp.SetAttr("verdict", "verified")
		sp.End()
	}
}

// discardSink measures tracer overhead without sink I/O cost.
type discardSink struct{}

func (discardSink) Emit(*Event)  {}
func (discardSink) Close() error { return nil }

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(discardSink{})
	parent := tr.Start("run", "r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := parent.Child("fixpoint", "intersect")
		sp.Count("intersect.items", int64(i))
		sp.End()
	}
}

func BenchmarkJSONLSinkEmit(b *testing.B) {
	tr := New(NewJSONLSink(io.Discard))
	parent := tr.Start("run", "r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := parent.Child("page", "p.php")
		sp.Count("grammar.prods", 100)
		sp.End()
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSONLSink writes one Event as one JSON object per line — the
// machine-readable trace log. Events round-trip through DecodeJSONL.
type JSONLSink struct {
	w *bufio.Writer
	c io.Closer
}

// NewJSONLSink returns a sink writing newline-delimited Event JSON to w.
// If w is an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e *Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return // an Event is always marshalable; defensive
	}
	s.w.Write(b)
	s.w.WriteByte('\n')
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// DecodeJSONL reads back a JSONL trace written by JSONLSink. Blank lines
// are skipped; a malformed line is an error carrying its line number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ChromeSink writes the Chrome trace-event format (the JSON object form,
// {"traceEvents": [...]}), loadable in chrome://tracing and Perfetto
// (ui.perfetto.dev). Every span becomes one complete ("ph":"X") event on
// the thread track of its worker lane, with attributes and counters in
// args; the span id is args.span_id so findings' span ids resolve in the
// viewer's selection panel. Lane tracks are named via thread_name
// metadata events the first time a lane appears.
type ChromeSink struct {
	w     *bufio.Writer
	c     io.Closer
	wrote bool
	lanes map[int]bool
}

// chromePID is the single process id all events share; the trace models
// one analyzer run, with lanes as threads.
const chromePID = 1

// NewChromeSink returns a sink writing a Chrome trace to w. The file is
// valid JSON only after Close writes the closing bracket. If w is an
// io.Closer it is closed by Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), lanes: map[int]bool{}}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	s.w.WriteString(`{"traceEvents":[`)
	return s
}

// chromeEvent is one trace-event object.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func (s *ChromeSink) emitRaw(ce *chromeEvent) {
	b, err := json.Marshal(ce)
	if err != nil {
		return
	}
	if s.wrote {
		s.w.WriteByte(',')
	}
	s.wrote = true
	s.w.WriteByte('\n')
	s.w.Write(b)
}

// Emit implements Sink.
func (s *ChromeSink) Emit(e *Event) {
	if !s.lanes[e.Lane] {
		s.lanes[e.Lane] = true
		s.emitRaw(&chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: e.Lane,
			Args: map[string]any{"name": "worker-" + strconv.Itoa(e.Lane)},
		})
	}
	args := make(map[string]any, len(e.Attrs)+len(e.Counters)+2)
	args["span_id"] = e.ID
	if e.Parent != 0 {
		args["parent_id"] = e.Parent
	}
	for k, v := range e.Attrs {
		args[k] = v
	}
	for k, v := range e.Counters {
		args[k] = v
	}
	// Chrome's viewer drops zero-duration complete events; clamp to 1µs so
	// every span stays visible.
	dur := e.DurUS
	if dur <= 0 {
		dur = 1
	}
	s.emitRaw(&chromeEvent{
		Name: e.Name, Cat: e.Cat, Ph: "X",
		TS: e.StartUS, Dur: dur, PID: chromePID, TID: e.Lane, Args: args,
	})
}

// Close terminates the JSON document and closes the underlying writer.
func (s *ChromeSink) Close() error {
	s.w.WriteString("\n]}\n")
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{ID: 1, Name: "analyze-app", Cat: "run", StartUS: 0, DurUS: 5000},
		{ID: 2, Parent: 1, Name: "index.php", Cat: "page", Lane: 0, StartUS: 10, DurUS: 900,
			Attrs:    map[string]string{"entry": "index.php"},
			Counters: map[string]int64{"grammar.prods": 1204, "intersect.items": 33}},
		{ID: 3, Parent: 1, Name: "members.php:6 mysql_query", Cat: "hotspot", Lane: 1,
			StartUS: 1000, DurUS: 0, // zero-duration span must survive both formats
			Attrs: map[string]string{"verdict": "vulnerable", "file": "members.php", "line": "6"}},
	}
}

// TestJSONLRoundTrip is the decoder test the trace format contract rests
// on: events written by the sink decode back exactly.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	in := sampleEvents()
	for i := range in {
		sink.Emit(&in[i])
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip count: want %d got %d", len(in), len(out))
	}
	for i := range in {
		a, _ := json.Marshal(in[i])
		b, _ := json.Marshal(out[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("event %d drifted:\n in: %s\nout: %s", i, a, b)
		}
	}
}

func TestDecodeJSONLRejectsGarbage(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader("{\"id\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	in := sampleEvents()
	for i := range in {
		sink.Emit(&in[i])
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// The file must be one valid JSON document of the object form.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}

	var complete, meta int
	lanesNamed := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
			lanesNamed[e.TID] = true
		case "X":
			complete++
			if e.TS == nil {
				t.Fatalf("complete event without ts: %+v", e)
			}
			if e.Dur <= 0 {
				t.Fatalf("complete event must have positive dur (Chrome drops 0): %+v", e)
			}
			if e.PID != chromePID {
				t.Fatalf("pid = %d", e.PID)
			}
			if _, ok := e.Args["span_id"]; !ok {
				t.Fatalf("span_id missing from args: %+v", e.Args)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if complete != len(sampleEvents()) {
		t.Fatalf("complete events = %d", complete)
	}
	// Lanes 0 and 1 appear, so two thread_name records.
	if meta != 2 || !lanesNamed[0] || !lanesNamed[1] {
		t.Fatalf("thread metadata wrong: %d named %v", meta, lanesNamed)
	}
	// The hotspot event's attrs and ids must surface in args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Cat == "hotspot" {
			found = true
			if e.Args["verdict"] != "vulnerable" || e.Args["parent_id"] != float64(1) {
				t.Fatalf("hotspot args: %+v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("hotspot event missing")
	}
}

// TestChromeTraceFromTracer drives the full pipeline: tracer -> spans ->
// chrome file, checking parallel-looking lanes render as separate tids.
func TestChromeTraceFromTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChromeSink(&buf))
	root := tr.Start("run", "r")
	for lane := 0; lane < 3; lane++ {
		sp := root.Child("page", "p.php")
		sp.SetLane(lane)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			tids[e.TID] = true
		}
	}
	if len(tids) != 3 {
		t.Fatalf("want 3 lanes, got %v", tids)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugProgressEndpoint(t *testing.T) {
	tr := New()
	tr.AddPagesTotal(5)
	tr.PageDone(false)
	sp := tr.Start("page", "p")
	sp.Count("grammar.prods", 11)
	sp.End()

	srv := httptest.NewServer(DebugHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.PagesTotal != 5 || snap.PagesDone != 1 {
		t.Fatalf("progress = %+v", snap)
	}
	if snap.Counters["grammar.prods"] != 11 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestDebugVarsAndIndex(t *testing.T) {
	tr := New()
	tr.AddPagesTotal(2)
	srv := httptest.NewServer(DebugHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"sqlciv"`) {
		t.Fatalf("expvar missing sqlciv export: %s", body)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/progress") {
		t.Fatalf("index page wrong: %s", body)
	}
}

func TestServeDebug(t *testing.T) {
	tr := New()
	addr, shutdown, err := ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestPublishExpvarAggregate proves the fix for the single-slot export:
// two concurrently published tracers both appear, the aggregate sums them,
// and releasing one removes only that one.
func TestPublishExpvarAggregate(t *testing.T) {
	t1, t2 := New(), New()
	t1.AddPagesTotal(3)
	t1.PageDone(false)
	t1.AddFindings(2)
	t2.AddPagesTotal(5)
	t2.PageDone(true)
	t2.AddFindings(1)

	rel1 := PublishExpvar(t1)
	rel2 := PublishExpvar(t2)
	defer rel1()
	defer rel2()

	snap := expvarSnapshot()
	if snap.Tracers < 2 {
		t.Fatalf("tracers = %d, want >= 2", snap.Tracers)
	}
	// Aggregate must include both tracers' contributions (other tests in the
	// binary may have published long-lived tracers, so use >=).
	if snap.Aggregate.PagesTotal < 8 {
		t.Errorf("aggregate pages total = %d, want >= 8", snap.Aggregate.PagesTotal)
	}
	if snap.Aggregate.Findings < 3 {
		t.Errorf("aggregate findings = %d, want >= 3", snap.Aggregate.Findings)
	}
	if snap.Aggregate.PagesDegraded < 1 {
		t.Errorf("aggregate degraded = %d, want >= 1", snap.Aggregate.PagesDegraded)
	}
	// Each tracer's own snapshot is present under its own key.
	var saw3, saw5 bool
	for _, s := range snap.PerTracer {
		if s.PagesTotal == 3 && s.Findings == 2 {
			saw3 = true
		}
		if s.PagesTotal == 5 && s.Findings == 1 {
			saw5 = true
		}
	}
	if !saw3 || !saw5 {
		t.Errorf("per-tracer snapshots missing entries: %+v", snap.PerTracer)
	}

	before := snap.Tracers
	rel2()
	after := expvarSnapshot()
	if after.Tracers != before-1 {
		t.Errorf("release: tracers %d -> %d, want %d", before, after.Tracers, before-1)
	}
	// Double-release is harmless.
	rel2()
	if got := expvarSnapshot().Tracers; got != before-1 {
		t.Errorf("double release changed count to %d", got)
	}
}

func TestRingSink(t *testing.T) {
	s := NewRingSink(4)
	tr := New(s)
	for i := 0; i < 6; i++ {
		sp := tr.Start("hotspot", "h")
		sp.End()
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4 (capacity)", len(evs))
	}
	if s.Dropped() != 2 {
		// 6 spans emit 6 end events; ring keeps 4.
		t.Errorf("dropped = %d, want 2", s.Dropped())
	}
	// Oldest-first ordering: span ids must be non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].ID < evs[i-1].ID {
			t.Fatalf("events not oldest-first: %v", evs)
		}
	}
}

func TestDebugHandlerMetricsMount(t *testing.T) {
	tr := New()
	m := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fake_metric 1\n"))
	})
	srv := httptest.NewServer(DebugHandlerMetrics(tr, m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fake_metric") {
		t.Fatalf("metrics not mounted: %s", body)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugProgressEndpoint(t *testing.T) {
	tr := New()
	tr.AddPagesTotal(5)
	tr.PageDone(false)
	sp := tr.Start("page", "p")
	sp.Count("grammar.prods", 11)
	sp.End()

	srv := httptest.NewServer(DebugHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.PagesTotal != 5 || snap.PagesDone != 1 {
		t.Fatalf("progress = %+v", snap)
	}
	if snap.Counters["grammar.prods"] != 11 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestDebugVarsAndIndex(t *testing.T) {
	tr := New()
	tr.AddPagesTotal(2)
	srv := httptest.NewServer(DebugHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"sqlciv"`) {
		t.Fatalf("expvar missing sqlciv export: %s", body)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/progress") {
		t.Fatalf("index page wrong: %s", body)
	}
}

func TestServeDebug(t *testing.T) {
	tr := New()
	addr, shutdown, err := ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// collectSink buffers events in memory for assertions.
type collectSink struct {
	mu     sync.Mutex
	events []Event
	closed bool
}

func (c *collectSink) Emit(e *Event) {
	c.mu.Lock()
	c.events = append(c.events, *e)
	c.mu.Unlock()
}

func (c *collectSink) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func TestSpanHierarchyAndCounters(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	root := tr.Start("run", "analyze-app", Attr{"entries", "2"})
	child := root.Child("page", "index.php")
	child.SetLane(3)
	grand := child.Child("fixpoint", "intersect")
	if grand.lane != 3 {
		t.Fatalf("child lane not inherited: %d", grand.lane)
	}
	grand.Count("intersect.items", 41)
	grand.Count("intersect.items", 1)
	grand.End()
	child.SetAttr("degraded", "step-limit")
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
	if len(sink.events) != 3 {
		t.Fatalf("want 3 events, got %d", len(sink.events))
	}
	// Events arrive in End order: grand, child, root.
	g, c, r := sink.events[0], sink.events[1], sink.events[2]
	if g.Parent != c.ID || c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent chain broken: %+v", sink.events)
	}
	if g.Counters["intersect.items"] != 42 {
		t.Fatalf("span counter = %d", g.Counters["intersect.items"])
	}
	if c.Attrs["degraded"] != "step-limit" {
		t.Fatalf("attr missing: %+v", c.Attrs)
	}
	if g.Lane != 3 || c.Lane != 3 {
		t.Fatalf("lanes: grand %d child %d", g.Lane, c.Lane)
	}
	if got := tr.Counters()["intersect.items"]; got != 42 {
		t.Fatalf("run counter = %d", got)
	}
	if names := tr.CounterNames(); len(names) != 1 || names[0] != "intersect.items" {
		t.Fatalf("counter names = %v", names)
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("run", "x")
	if sp != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	// None of these may panic.
	sp.Count("k", 1)
	sp.SetAttr("a", "b")
	sp.SetLane(5)
	child := sp.Child("c", "n")
	if child != nil {
		t.Fatal("nil span must produce nil children")
	}
	child.End()
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span id must be 0")
	}
	if lane := tr.AcquireLane(); lane != 0 {
		t.Fatalf("nil tracer lane = %d", lane)
	}
	tr.ReleaseLane(0)
	tr.AddPagesTotal(3)
	tr.PageDone(true)
	tr.AddHotspotsTotal(2)
	tr.HotspotDone(false)
	tr.AddFindings(1)
	if snap := tr.Progress(); snap.PagesTotal != 0 {
		t.Fatalf("nil tracer progress = %+v", snap)
	}
	if tr.Counters() != nil || tr.CounterNames() != nil {
		t.Fatal("nil tracer counters must be nil")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLanePoolBoundedByConcurrency(t *testing.T) {
	tr := New()
	a := tr.AcquireLane()
	b := tr.AcquireLane()
	if a != 0 || b != 1 {
		t.Fatalf("lanes = %d,%d", a, b)
	}
	tr.ReleaseLane(a)
	if c := tr.AcquireLane(); c != 0 {
		t.Fatalf("released lane not reused: %d", c)
	}
	if d := tr.AcquireLane(); d != 2 {
		t.Fatalf("next fresh lane = %d", d)
	}
}

func TestConcurrentSpansAndLanes(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	root := tr.Start("run", "r")
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := tr.AcquireLane()
			defer tr.ReleaseLane(lane)
			sp := root.Child("page", fmt.Sprintf("p%d.php", i))
			sp.SetLane(lane)
			sp.Count("steps", int64(i))
			sp.End()
			tr.PageDone(i%2 == 0)
		}(i)
	}
	wg.Wait()
	root.End()
	if len(sink.events) != workers+1 {
		t.Fatalf("events = %d", len(sink.events))
	}
	for _, e := range sink.events[:workers] {
		if e.Lane < 0 || e.Lane >= workers {
			t.Fatalf("lane out of range: %d", e.Lane)
		}
	}
	snap := tr.Progress()
	if snap.PagesDone != workers || snap.PagesDegraded != workers/2 {
		t.Fatalf("progress = %+v", snap)
	}
}

func TestProgressSnapshot(t *testing.T) {
	tr := New()
	tr.AddPagesTotal(4)
	tr.PageDone(false)
	tr.PageDone(true)
	tr.AddHotspotsTotal(10)
	tr.HotspotDone(false)
	tr.HotspotDone(true)
	tr.HotspotDone(true)
	tr.AddFindings(3)
	snap := tr.Progress()
	if snap.PagesDone != 2 || snap.PagesTotal != 4 || snap.PagesDegraded != 1 {
		t.Fatalf("pages: %+v", snap)
	}
	if snap.HotspotsDone != 3 || snap.HotspotsTotal != 10 || snap.HotspotsDegraded != 2 {
		t.Fatalf("hotspots: %+v", snap)
	}
	if snap.Findings != 3 {
		t.Fatalf("findings: %+v", snap)
	}
	// The snapshot is the debug endpoint's JSON body; it must marshal.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestEventJSONShape(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	sp := tr.Start("hotspot", "members.php:6", Attr{"check", "1"})
	sp.Count("earley.parses", 7)
	sp.End()
	tr.Close()
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "name", "cat", "lane", "start_us", "dur_us", "attrs", "counters"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("event JSON missing %q: %s", key, buf.String())
		}
	}
}

package metrics

import (
	"runtime"
	"time"
)

// RuntimeSampler is the daemon's runtime watchdog: a ticker goroutine that
// samples goroutine count, heap, and GC state into gauges, so a scrape sees
// fresh-enough process health without paying runtime.ReadMemStats (a
// stop-the-world) on every request to /metrics.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntime registers the go_* runtime series on r and starts sampling
// them every interval (default 5 s when ≤ 0). One immediate sample runs
// before returning so a scrape right after startup sees live values.
func StartRuntime(r *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	goroutines := r.Gauge("go_goroutines",
		"Number of live goroutines (sampled by the runtime watchdog).")
	heapAlloc := r.Gauge("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.")
	heapSys := r.Gauge("go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.")
	gcCycles := r.Gauge("go_gc_cycles_total",
		"Completed GC cycles (monotonic; exported as a sampled gauge).")
	gcPause := r.Gauge("go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause seconds (monotonic; sampled).")
	lastGC := r.Gauge("go_last_gc_seconds",
		"Seconds since the last completed GC cycle (0 before the first).")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		if ms.LastGC > 0 {
			lastGC.Set(time.Since(time.Unix(0, int64(ms.LastGC))).Seconds())
		}
	}
	sample()

	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return s
}

// Stop ends the sampling goroutine and waits for it to exit.
func (s *RuntimeSampler) Stop() {
	close(s.stop)
	<-s.done
}

// Package metrics is a zero-dependency, low-allocation metrics registry
// for the analyzer's serving path: atomic counters, gauges, and fixed-bucket
// latency histograms, optionally labeled, with Prometheus text exposition.
//
// The design goals mirror the rest of the obs layer:
//
//   - hot paths are a handful of atomic operations — a Counter.Add is one
//     atomic add, a Histogram.Observe is one bucket add plus one CAS loop on
//     the sum (see BenchmarkHistogramObserve; the budget is ≤30 ns) — and
//     never allocate;
//   - labeled families intern their children: Vec.With returns the same
//     child for the same label values, so callers on a hot path look a
//     child up once (per tenant, endpoint, or verdict class) and keep the
//     pointer;
//   - readers (the /metrics exposition, quantile snapshots) never block
//     writers for more than a map read lock.
//
// Func-backed series (CounterFunc, GaugeFunc, and their Vec forms) export
// values the process already maintains elsewhere — the daemon's queue
// atomics, the policy checker's cumulative cache counters, the arena intern
// pool — without double counting: the callback is invoked at scrape time.
//
// Exposition is the Prometheus text format (text/plain; version=0.0.4),
// deterministically ordered (families by name, series by label values), so
// a scrape can be golden-tested. ValidateExposition is the strict parser the
// golden test and the metrics-smoke CI check share.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the metric family type.
type Kind uint8

// Family kinds, matching the Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Labeled is one dynamically gathered series of a func-backed vec family:
// its label values (matching the family's label names) and current value.
type Labeled struct {
	Values []string
	V      float64
}

// family is one named metric family: a kind, a label schema, and the
// interned children keyed by their joined label values.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket upper bounds (no +Inf)

	// Exactly one of the following is populated.
	fn    func() float64  // func-backed single series
	vecFn func() []Labeled // func-backed labeled series

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | *Histogram
}

// Registry owns a set of metric families. The zero value is not usable;
// create with New. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register creates (or re-fetches) a family. Re-registering the same name
// with the same shape returns the existing family (idempotent, so package
// init order does not matter); a shape conflict is a programming error and
// panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	checkName(name)
	for _, l := range labels {
		checkLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		bounds: bounds, children: map[string]any{}}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkName enforces the Prometheus metric name charset.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic("metrics: invalid metric name: " + name)
		}
	}
}

// checkLabel enforces the Prometheus label name charset.
func checkLabel(name string) {
	if name == "" {
		panic("metrics: empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic("metrics: invalid label name: " + name)
		}
	}
}

// ---- counters ----------------------------------------------------------

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters should be minted by a Registry to be exposed.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be ≥ 0; negative deltas are
// silently dropped to keep the series monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the pattern for exporting an atomic the process already maintains.
// fn must be monotonic for the series to be a valid Prometheus counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.fn = fn
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With interns and returns the child for the given label values. Hot paths
// should call With once per distinct label set and keep the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(labelKey(v.f, values), func() any { return &Counter{} }).(*Counter)
}

// CounterVecFunc registers a labeled counter family gathered from fn at
// scrape time (e.g. per-tenant cumulative counts kept elsewhere).
func (r *Registry) CounterVecFunc(name, help string, labels []string, fn func() []Labeled) {
	f := r.register(name, help, KindCounter, labels, nil)
	f.vecFn = fn
}

// ---- gauges ------------------------------------------------------------

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.fn = fn
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With interns and returns the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(labelKey(v.f, values), func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVecFunc registers a labeled gauge family gathered from fn at scrape
// time.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []Labeled) {
	f := r.register(name, help, KindGauge, labels, nil)
	f.vecFn = fn
}

// ---- histograms --------------------------------------------------------

// Histogram is a fixed-bucket histogram: one atomic counter per bucket plus
// an atomic float sum. Observe is the hot path — a linear bucket search
// (bucket counts are small and fixed), one atomic add, and one CAS loop.
type Histogram struct {
	bounds []float64 // upper bounds, ascending, +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the unit latency histograms use).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank — the same estimate a
// Prometheus histogram_quantile would produce from one scrape. Observations
// in the +Inf bucket clamp to the largest finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the last finite
				// bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(prev)) / float64(c)
			return lower + (h.bounds[i]-lower)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets is the default latency bucket layout in seconds: 1 ms to 10 s,
// sized for the daemon's serving path (warm cache hits land in the low
// milliseconds, cold Table 1 subjects in the hundreds).
func DefBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Histogram registers (or fetches) an unlabeled histogram. buckets must be
// ascending; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	buckets = checkBuckets(buckets)
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, checkBuckets(buckets))}
}

// With interns and returns the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(labelKey(v.f, values), func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Each calls fn for every interned child with its label values, in sorted
// label order — the hook /debug/server uses to render per-endpoint
// p50/p95/p99 without re-parsing the exposition.
func (v *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	v.f.mu.RLock()
	keys := make([]string, 0, len(v.f.children))
	for k := range v.f.children {
		keys = append(keys, k)
	}
	v.f.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.f.mu.RLock()
		c := v.f.children[k]
		v.f.mu.RUnlock()
		fn(splitKey(k), c.(*Histogram))
	}
}

func checkBuckets(b []float64) []float64 {
	if len(b) == 0 {
		return DefBuckets()
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
	return b
}

// ---- interning ---------------------------------------------------------

// labelKey joins label values into the intern key. 0xff cannot appear in
// UTF-8 text, so the join is unambiguous.
func labelKey(f *family, values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, "\xff")
}

func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\xff")
}

// child interns one series under key, creating it with mk on first use.
func (f *family) child(key string, mk func() any) any {
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	return c
}

// ---- exposition --------------------------------------------------------

// WritePrometheus renders every family in the Prometheus text format,
// deterministically ordered: families by name, series by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		writeFamily(bw, fams[name])
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f *family) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.fn != nil:
		writeSample(w, f.name, f.labels, nil, f.fn())
	case f.vecFn != nil:
		series := f.vecFn()
		sort.Slice(series, func(i, j int) bool {
			return less(series[i].Values, series[j].Values)
		})
		for _, s := range series {
			writeSample(w, f.name, f.labels, s.Values, s.V)
		}
	default:
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		children := make(map[string]any, len(f.children))
		for k, c := range f.children {
			children[k] = c
		}
		f.mu.RUnlock()
		sort.Strings(keys)
		for _, k := range keys {
			values := splitKey(k)
			switch c := children[k].(type) {
			case *Counter:
				writeSample(w, f.name, f.labels, values, float64(c.Value()))
			case *Gauge:
				writeSample(w, f.name, f.labels, values, c.Value())
			case *Histogram:
				writeHistogram(w, f.name, f.labels, values, c)
			}
		}
	}
}

func less(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// writeHistogram renders the cumulative _bucket series plus _sum and _count.
func writeHistogram(w *bufio.Writer, name string, labels, values []string, h *Histogram) {
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSampleLE(w, name+"_bucket", labels, values, le, float64(cum))
	}
	writeSample(w, name+"_sum", labels, values, h.Sum())
	writeSample(w, name+"_count", labels, values, float64(cum))
}

func writeSample(w *bufio.Writer, name string, labels, values []string, v float64) {
	writeSampleLE(w, name, labels, values, "", v)
}

func writeSampleLE(w *bufio.Writer, name string, labels, values []string, le string, v float64) {
	w.WriteString(name)
	if len(values) > 0 || le != "" {
		w.WriteByte('{')
		first := true
		for i, val := range values {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(labels[i])
			w.WriteString(`="`)
			w.WriteString(escapeLabel(val))
			w.WriteByte('"')
		}
		if le != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Snapshot flattens the registry to "name{label=value,...}" → value.
// Histograms contribute name_count, name_sum, and estimated name_p50 /
// name_p95 / name_p99 series. Used by /debug introspection and by the
// served-benchmark snapshot recorded into BENCH_server.json.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		switch {
		case f.fn != nil:
			out[f.name] = f.fn()
		case f.vecFn != nil:
			for _, s := range f.vecFn() {
				out[seriesName(f, s.Values)] = s.V
			}
		default:
			f.mu.RLock()
			children := make(map[string]any, len(f.children))
			for k, c := range f.children {
				children[k] = c
			}
			f.mu.RUnlock()
			for k, c := range children {
				values := splitKey(k)
				base := seriesName(f, values)
				switch c := c.(type) {
				case *Counter:
					out[base] = float64(c.Value())
				case *Gauge:
					out[base] = c.Value()
				case *Histogram:
					name := seriesSuffixed(f, values)
					out[name("count")] = float64(c.Count())
					out[name("sum")] = c.Sum()
					out[name("p50")] = c.Quantile(0.50)
					out[name("p95")] = c.Quantile(0.95)
					out[name("p99")] = c.Quantile(0.99)
				}
			}
		}
	}
	return out
}

func seriesName(f *family, values []string) string {
	if len(values) == 0 {
		return f.name
	}
	var b strings.Builder
	b.WriteString(f.name)
	b.WriteByte('{')
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteByte('=')
		b.WriteString(v)
	}
	b.WriteByte('}')
	return b.String()
}

func seriesSuffixed(f *family, values []string) func(suffix string) string {
	return func(suffix string) string {
		g := family{name: f.name + "_" + suffix, labels: f.labels}
		return seriesName(&g, values)
	}
}

// ValidateExposition strictly parses a Prometheus text exposition and
// returns the distinct metric names seen (histogram series reduce to their
// family name). It enforces: HELP/TYPE comment shape, name charsets, label
// syntax, parseable sample values, and that every sample belongs to the
// family most recently declared or is a bare untyped series. The golden
// test and `make metrics-smoke` both gate on it.
func ValidateExposition(data []byte) (names []string, err error) {
	seen := map[string]bool{}
	for lineNo, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if err := validName(fields[2]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, rest, err := parseSeriesName(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		val := strings.TrimSpace(rest)
		// Allow an optional timestamp after the value.
		if i := strings.IndexByte(val, ' '); i >= 0 {
			ts := val[i+1:]
			val = val[:i]
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(base, suffix); ok {
				base = b
				break
			}
		}
		if !seen[base] && !seen[name] {
			seen[base] = true
			names = append(names, base)
		}
	}
	sort.Strings(names)
	return names, nil
}

func validName(name string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	checkName(name)
	return nil
}

// parseSeriesName splits "name{label="v",...} value" into the metric name
// and the remainder after the optional label block, validating label syntax.
func parseSeriesName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if err := validName(name); err != nil {
		return "", "", err
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Label block: scan past quoted values, honoring escapes.
	j := i + 1
	for j < len(line) && line[j] != '}' {
		// label name
		k := j
		for k < len(line) && line[k] != '=' {
			k++
		}
		if k >= len(line) {
			return "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		if err := validName(line[j:k]); err != nil {
			return "", "", fmt.Errorf("bad label name in %q: %v", line, err)
		}
		if k+1 >= len(line) || line[k+1] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		k += 2
		for k < len(line) && line[k] != '"' {
			if line[k] == '\\' {
				k++
			}
			k++
		}
		if k >= len(line) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		j = k + 1
		if j < len(line) && line[j] == ',' {
			j++
		}
	}
	if j >= len(line) || line[j] != '}' {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	if j+1 >= len(line) || line[j+1] != ' ' {
		return "", "", fmt.Errorf("missing sample value in %q", line)
	}
	return name, line[j+2:], nil
}

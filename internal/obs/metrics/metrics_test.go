package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistry hammers one registry from parallel goroutines the
// way concurrent daemon requests do — counters must be exact, histograms
// sum-consistent — and is the -race exercise for the whole hot path.
func TestConcurrentRegistry(t *testing.T) {
	r := New()
	c := r.Counter("hits_total", "plain counter")
	vec := r.CounterVec("req_total", "labeled counter", "endpoint")
	g := r.Gauge("depth", "gauge")
	h := r.Histogram("lat_seconds", "histogram", []float64{0.5, 1, 2, 4})
	hv := r.HistogramVec("lat_by_ep_seconds", "labeled histogram", []float64{1, 2}, "endpoint")

	const workers = 8
	const perWorker = 10000
	endpoints := []string{"analyze", "jobs", "health"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := endpoints[w%len(endpoints)]
			child := vec.With(ep)
			hist := hv.With(ep)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Add(2)
				g.Set(float64(w))
				// 0.25 and 1.5 are exact binary fractions, so the sum is
				// exact and the bucket split is deterministic.
				if i%2 == 0 {
					h.Observe(0.25)
				} else {
					h.Observe(1.5)
				}
				hist.Observe(0.25)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	var vecTotal int64
	for _, ep := range endpoints {
		vecTotal += vec.With(ep).Value()
	}
	if vecTotal != 2*workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, 2*workers*perWorker)
	}
	if n := h.Count(); n != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", n, workers*perWorker)
	}
	wantSum := float64(workers*perWorker/2)*0.25 + float64(workers*perWorker/2)*1.5
	if s := h.Sum(); s != wantSum {
		t.Errorf("histogram sum = %v, want %v", s, wantSum)
	}
	var hvCount int64
	for _, ep := range endpoints {
		hvCount += hv.With(ep).Count()
	}
	if hvCount != workers*perWorker {
		t.Errorf("labeled histogram count = %d, want %d", hvCount, workers*perWorker)
	}
	// The exposition of the hammered registry must still parse strictly.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"hits_total", "req_total", "depth", "lat_seconds", "lat_by_ep_seconds"} {
		if !contains(names, want) {
			t.Errorf("exposition missing family %s (got %v)", want, names)
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.Counter("a_total", "a counter").Add(3)
	r.CounterVec("b_total", "labeled", "tenant", "code").With("t1", "bad-app").Inc()
	r.GaugeFunc("q_len", "queue", func() float64 { return 7 })
	r.GaugeVecFunc("t_inflight", "per tenant", []string{"tenant"}, func() []Labeled {
		return []Labeled{{Values: []string{"zeta"}, V: 1}, {Values: []string{"alpha"}, V: 2}}
	})
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		`b_total{tenant="t1",code="bad-app"} 1`,
		"q_len 7",
		// vec-func series are sorted by label values
		"t_inflight{tenant=\"alpha\"} 2\nt_inflight{tenant=\"zeta\"} 1",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 30.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic across renders")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("e_total", "escapes", "v").With("a\\b\"c\nd").Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `e_total{v="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("escaped exposition does not parse: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, bad := range []string{
		"name value\n",                // non-numeric value
		"1name 3\n",                   // bad metric name
		`x{l="v} 3` + "\n",            // unterminated label value
		"x{l=v} 3\n",                  // unquoted label value
		"# TYPE x flavor\n",           // unknown type
		"x{0l=\"v\"} 3\n",             // bad label name
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("ValidateExposition accepted %q", bad)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations uniformly in (0,1]: p50 ≈ 0.5 within the first
	// bucket by interpolation.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q < 0.4 || q > 0.6 {
		t.Errorf("p50 = %v, want ≈0.5", q)
	}
	// Push 100 more into (1,2]: p99 lands in the second bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if q := h.Quantile(0.99); q < 1 || q > 2 {
		t.Errorf("p99 = %v, want in (1,2]", q)
	}
	// +Inf observations clamp to the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 2 {
		t.Errorf("+Inf quantile = %v, want 2 (clamp)", q)
	}
}

func TestRegisterIdempotentAndConflicts(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("re-registering the same counter returned a different child")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape conflict did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestRuntimeSampler(t *testing.T) {
	r := New()
	s := StartRuntime(r, time.Millisecond)
	defer s.Stop()
	snap := r.Snapshot()
	if snap["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want ≥ 1", snap["go_goroutines"])
	}
	if snap["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", snap["go_heap_alloc_bytes"])
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime exposition: %v", err)
	}
}

func TestSnapshotHistogramSeries(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", nil)
	for i := 0; i < 10; i++ {
		h.Observe(0.003)
	}
	snap := r.Snapshot()
	if snap["lat_seconds_count"] != 10 {
		t.Errorf("snapshot count = %v", snap["lat_seconds_count"])
	}
	if math.Abs(snap["lat_seconds_sum"]-0.03) > 1e-9 {
		t.Errorf("snapshot sum = %v", snap["lat_seconds_sum"])
	}
	if p := snap["lat_seconds_p99"]; p <= 0 || p > 0.005 {
		t.Errorf("snapshot p99 = %v, want in first buckets", p)
	}
}

// BenchmarkHistogramObserve is the hot-path budget check: the tentpole
// requires a histogram record ≤ 30 ns.
func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.012)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := New()
	vec := r.CounterVec("x_total", "x", "tenant")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("tenant-a").Inc()
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The debug endpoint serves three things for a run in flight:
//
//	/debug/progress   live JSON Snapshot (pages/hotspots done, degraded,
//	                  findings, counter totals)
//	/debug/vars       expvar, including the tracer's counters and progress
//	                  under "sqlciv"
//	/debug/pprof/     the standard pprof handlers
//
// One tracer at a time owns the expvar export (the process-global expvar
// namespace admits each name once); ServeDebug/PublishExpvar swap the
// current tracer in atomically, so sequential runs in one process each see
// their own numbers.

var (
	expvarOnce   sync.Once
	debugCurrent atomic.Pointer[Tracer]
)

// PublishExpvar makes t the tracer behind the process-wide "sqlciv" expvar
// (counter totals + progress gauge). Safe to call repeatedly; the latest
// tracer wins.
func PublishExpvar(t *Tracer) {
	debugCurrent.Store(t)
	expvarOnce.Do(func() {
		expvar.Publish("sqlciv", expvar.Func(func() any {
			return debugCurrent.Load().Progress()
		}))
	})
}

// DebugHandler returns the debug mux for t. It also publishes t's expvar
// export.
func DebugHandler(t *Tracer) http.Handler {
	PublishExpvar(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Progress())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("sqlciv debug endpoint\n\n/debug/progress\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060") and
// returns the bound address and a shutdown func. The server runs until the
// shutdown func is called; serving errors after a successful bind are
// dropped (the endpoint is best-effort diagnostics, not a service).
func ServeDebug(addr string, t *Tracer) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(t)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// The debug endpoint serves three things for a run in flight:
//
//	/debug/progress   live JSON Snapshot (pages/hotspots done, degraded,
//	                  findings, counter totals)
//	/debug/vars       expvar, including every published tracer's counters
//	                  and progress under "sqlciv"
//	/debug/pprof/     the standard pprof handlers
//
// The process-global expvar namespace admits each name once, but a process
// can run many tracers at once (the daemon gives every job its own). The
// "sqlciv" export therefore carries ALL currently published tracers: an
// aggregate view merging their counters and progress, plus each tracer's
// own snapshot keyed by a stable registration id — never a last-writer-wins
// single slot.

var (
	expvarOnce   sync.Once
	debugMu      sync.Mutex
	debugNextID  int
	debugTracers = map[*Tracer]int{}
)

// ExpvarSnapshot is the shape of the "sqlciv" expvar: the merged view of
// every published tracer plus each tracer's own snapshot.
type ExpvarSnapshot struct {
	Tracers   int                 `json:"tracers"`
	Aggregate Snapshot            `json:"aggregate"`
	PerTracer map[string]Snapshot `json:"per_tracer,omitempty"`
}

// PublishExpvar registers t with the process-wide "sqlciv" expvar export.
// Concurrent publishers (daemon jobs, parallel servers in one test binary)
// each appear under their own key and all contribute to the aggregate, so
// none can steal the export from another. Registering the same tracer again
// is a no-op. The returned release func unregisters t; callers whose tracer
// lives for the whole process may ignore it.
func PublishExpvar(t *Tracer) (release func()) {
	if t == nil {
		return func() {}
	}
	debugMu.Lock()
	if _, ok := debugTracers[t]; !ok {
		debugNextID++
		debugTracers[t] = debugNextID
	}
	debugMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("sqlciv", expvar.Func(func() any { return expvarSnapshot() }))
	})
	return func() {
		debugMu.Lock()
		delete(debugTracers, t)
		debugMu.Unlock()
	}
}

// expvarSnapshot renders every published tracer. The aggregate sums the
// progress gauges and merges counter totals; ElapsedMS is the maximum (the
// oldest live tracer's age).
func expvarSnapshot() ExpvarSnapshot {
	debugMu.Lock()
	tracers := make(map[*Tracer]int, len(debugTracers))
	for t, id := range debugTracers {
		tracers[t] = id
	}
	debugMu.Unlock()
	out := ExpvarSnapshot{Tracers: len(tracers)}
	if len(tracers) > 0 {
		out.PerTracer = make(map[string]Snapshot, len(tracers))
	}
	agg := Snapshot{Counters: map[string]int64{}}
	// Deterministic iteration: by registration id.
	ids := make([]int, 0, len(tracers))
	byID := make(map[int]*Tracer, len(tracers))
	for t, id := range tracers {
		ids = append(ids, id)
		byID[id] = t
	}
	sort.Ints(ids)
	for _, id := range ids {
		snap := byID[id].Progress()
		out.PerTracer[fmt.Sprintf("tracer-%d", id)] = snap
		if snap.ElapsedMS > agg.ElapsedMS {
			agg.ElapsedMS = snap.ElapsedMS
		}
		agg.PagesDone += snap.PagesDone
		agg.PagesTotal += snap.PagesTotal
		agg.PagesDegraded += snap.PagesDegraded
		agg.HotspotsDone += snap.HotspotsDone
		agg.HotspotsTotal += snap.HotspotsTotal
		agg.HotspotsDegraded += snap.HotspotsDegraded
		agg.Findings += snap.Findings
		for k, v := range snap.Counters {
			agg.Counters[k] += v
		}
	}
	if len(agg.Counters) == 0 {
		agg.Counters = nil
	}
	out.Aggregate = agg
	return out
}

// DebugHandler returns the debug mux for t. It also publishes t's expvar
// export (never released — the handler keeps t reachable anyway; callers
// needing a bounded lifetime should PublishExpvar themselves and release).
func DebugHandler(t *Tracer) http.Handler {
	return DebugHandlerMetrics(t, nil)
}

// DebugHandlerMetrics is DebugHandler with an optional Prometheus-style
// exposition handler mounted at /metrics (nil mounts nothing). The metrics
// registry lives in obs/metrics; taking an http.Handler keeps this package
// decoupled from it.
func DebugHandlerMetrics(t *Tracer, metrics http.Handler) http.Handler {
	PublishExpvar(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Progress())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := "sqlciv debug endpoint\n\n/debug/progress\n/debug/vars\n/debug/pprof/\n"
	if metrics != nil {
		mux.Handle("/metrics", metrics)
		index += "/metrics\n"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(index))
	})
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060") and
// returns the bound address and a shutdown func. The server runs until the
// shutdown func is called; serving errors after a successful bind are
// dropped (the endpoint is best-effort diagnostics, not a service).
func ServeDebug(addr string, t *Tracer) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(t)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// Package obs is the analyzer's observability substrate: hierarchical
// spans around every analysis unit (page analyses, hotspot policy checks,
// the fixpoints inside them), counters aggregated per span and per run,
// pluggable trace sinks (JSONL events, Chrome trace-event files that load
// in chrome://tracing and Perfetto), a live progress gauge, and a debug
// HTTP endpoint (expvar + pprof + progress snapshot).
//
// The paper's §5.3 makes analysis cost the practical bottleneck; the
// parallelism and budget layers (PR 1/PR 2) attack it, and this package is
// how those attacks are measured instead of guessed: a whole run renders
// as a flamegraph across worker lanes, and every degraded unit's finding
// carries the span id of the unit that burned the budget.
//
// Everything is nil-safe and zero-dependency: a nil *Tracer produces nil
// *Spans, and every method on a nil Tracer or Span returns immediately, so
// instrumented hot paths cost nothing when tracing is off (verified by
// BenchmarkDisabledSpan; the Table 1 benchmarks run with a nil tracer and
// stay within noise of the pre-obs baseline). Engine code follows the same
// batched pattern as the budget probes: hot loops keep local counters and
// flush one Count call per unit, never one call per iteration.
//
// A Tracer is safe for concurrent use; a Span's Count/SetAttr may be called
// only by the goroutine that owns the unit (the same single-owner contract
// as *budget.Budget).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (entry name, file:line, check
// id, verdict, degradation reason, ...).
type Attr struct {
	Key string
	Val string
}

// Event is the wire form of one completed span, as written to sinks. The
// JSONL sink emits exactly this shape, one object per line; the Chrome
// sink reshapes it into a trace-event.
type Event struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Cat groups spans of one kind ("run", "phase", "page", "hotspot",
	// "fixpoint", ...); trace viewers use it for filtering and coloring.
	Cat  string `json:"cat,omitempty"`
	Lane int    `json:"lane"`
	// StartUS and DurUS are microseconds; StartUS is relative to the
	// tracer's epoch so traces are stable across runs and machines.
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Counters map[string]int64  `json:"counters,omitempty"`
}

// Sink consumes completed span events. Emit is called under the tracer's
// lock, so implementations need no synchronization of their own but must
// not block for long.
type Sink interface {
	Emit(*Event)
	Close() error
}

// Tracer owns the span id space, the run-level counter aggregation, the
// worker-lane pool, the live progress gauge, and the sink fan-out. A nil
// Tracer is the disabled tracer: Start returns a nil span and every other
// method is a no-op.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu       sync.Mutex
	sinks    []Sink
	counters map[string]int64
	lanes    []bool // lane pool; lanes[i] = in use

	prog progress
}

// progress is the live run gauge, updated lock-free from worker goroutines.
type progress struct {
	pagesTotal       atomic.Int64
	pagesDone        atomic.Int64
	pagesDegraded    atomic.Int64
	hotspotsTotal    atomic.Int64
	hotspotsDone     atomic.Int64
	hotspotsDegraded atomic.Int64
	findings         atomic.Int64
}

// Snapshot is one consistent-enough view of a run in flight, served by the
// debug endpoint and the -progress ticker.
type Snapshot struct {
	ElapsedMS        int64            `json:"elapsed_ms"`
	PagesDone        int64            `json:"pages_done"`
	PagesTotal       int64            `json:"pages_total"`
	PagesDegraded    int64            `json:"pages_degraded"`
	HotspotsDone     int64            `json:"hotspots_done"`
	HotspotsTotal    int64            `json:"hotspots_total"`
	HotspotsDegraded int64            `json:"hotspots_degraded"`
	Findings         int64            `json:"findings"`
	Counters         map[string]int64 `json:"counters,omitempty"`
}

// New returns a Tracer writing completed spans to the given sinks. A
// Tracer with no sinks still aggregates counters and progress (for the
// debug endpoint and -progress).
func New(sinks ...Sink) *Tracer {
	return &Tracer{epoch: time.Now(), sinks: sinks, counters: map[string]int64{}}
}

// Close flushes and closes every sink. The first error wins.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	return first
}

// Span is one timed unit of work. The zero of *Span (nil) is the disabled
// span: every method returns immediately and Child returns nil, so
// instrumentation plumbed through disabled runs costs one nil check.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	cat    string
	lane   int
	start  time.Time

	attrs    []Attr
	counters map[string]int64
}

// Start opens a root span (no parent). Most callers should open children
// via Span.Child so lanes and parent ids propagate.
func (t *Tracer) Start(cat, name string, attrs ...Attr) *Span {
	return t.start(nil, cat, name, attrs)
}

func (t *Tracer) start(parent *Span, cat, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.nextID.Add(1), name: name, cat: cat, start: time.Now(), attrs: attrs}
	if parent != nil {
		s.parent = parent.id
		s.lane = parent.lane
	}
	return s
}

// Child opens a sub-span inheriting s's lane. On a nil span it returns
// nil, which keeps whole instrumented call trees free when tracing is off.
func (s *Span) Child(cat, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s, cat, name, attrs)
}

// ID returns the span id (0 for the disabled span). Findings and
// degradations record it so reports link back into the trace.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetLane pins the span (and, via inheritance, its children) to a worker
// lane — one horizontal track in the Chrome trace view.
func (s *Span) SetLane(lane int) {
	if s == nil {
		return
	}
	s.lane = lane
}

// SetAttr adds or replaces one annotation.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, val})
}

// Count adds n to the span's counter key. Counters flush into the run
// totals when the span ends. Call it once per unit with a locally
// accumulated total, not once per loop iteration.
func (s *Span) Count(key string, n int64) {
	if s == nil || n == 0 {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 8)
	}
	s.counters[key] += n
}

// End closes the span: its event goes to every sink and its counters fold
// into the run totals. End must be called exactly once, by the owning
// goroutine; a nil span's End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	now := time.Now()
	e := &Event{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Cat:     s.cat,
		Lane:    s.lane,
		StartUS: s.start.Sub(t.epoch).Microseconds(),
		DurUS:   now.Sub(s.start).Microseconds(),
	}
	if len(s.attrs) > 0 {
		e.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			e.Attrs[a.Key] = a.Val
		}
	}
	if len(s.counters) > 0 {
		e.Counters = s.counters
	}
	t.mu.Lock()
	for k, v := range s.counters {
		t.counters[k] += v
	}
	for _, sink := range t.sinks {
		sink.Emit(e)
	}
	t.mu.Unlock()
}

// Counters returns a copy of the run-level counter totals (counters of
// every ended span, summed).
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// CounterNames returns the sorted counter keys seen so far.
func (t *Tracer) CounterNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.counters))
	for k := range t.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AcquireLane hands out the smallest free worker lane. Workers acquire a
// lane after they win a worker-pool slot and release it when done, so a
// run with N workers renders as exactly N lanes. The disabled tracer
// always returns lane 0.
func (t *Tracer) AcquireLane() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, used := range t.lanes {
		if !used {
			t.lanes[i] = true
			return i
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes) - 1
}

// ReleaseLane returns a lane to the pool.
func (t *Tracer) ReleaseLane(lane int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if lane >= 0 && lane < len(t.lanes) {
		t.lanes[lane] = false
	}
}

// Progress mutators, called by the core driver as units complete.

// AddPagesTotal grows the page denominator (once per run).
func (t *Tracer) AddPagesTotal(n int) {
	if t != nil {
		t.prog.pagesTotal.Add(int64(n))
	}
}

// PageDone records one finished page analysis.
func (t *Tracer) PageDone(degraded bool) {
	if t == nil {
		return
	}
	t.prog.pagesDone.Add(1)
	if degraded {
		t.prog.pagesDegraded.Add(1)
	}
}

// AddHotspotsTotal grows the hotspot denominator (once per run, after
// phase 1 has discovered the hotspots).
func (t *Tracer) AddHotspotsTotal(n int) {
	if t != nil {
		t.prog.hotspotsTotal.Add(int64(n))
	}
}

// HotspotDone records one finished hotspot check.
func (t *Tracer) HotspotDone(degraded bool) {
	if t == nil {
		return
	}
	t.prog.hotspotsDone.Add(1)
	if degraded {
		t.prog.hotspotsDegraded.Add(1)
	}
}

// AddFindings records reported findings.
func (t *Tracer) AddFindings(n int) {
	if t != nil {
		t.prog.findings.Add(int64(n))
	}
}

// Progress returns the live run gauge plus current counter totals.
func (t *Tracer) Progress() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return Snapshot{
		ElapsedMS:        time.Since(t.epoch).Milliseconds(),
		PagesDone:        t.prog.pagesDone.Load(),
		PagesTotal:       t.prog.pagesTotal.Load(),
		PagesDegraded:    t.prog.pagesDegraded.Load(),
		HotspotsDone:     t.prog.hotspotsDone.Load(),
		HotspotsTotal:    t.prog.hotspotsTotal.Load(),
		HotspotsDegraded: t.prog.hotspotsDegraded.Load(),
		Findings:         t.prog.findings.Load(),
		Counters:         t.Counters(),
	}
}

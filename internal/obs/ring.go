package obs

import "sync"

// RingSink is a bounded in-memory trace sink: it keeps the most recent N
// span events and drops the oldest beyond that, counting what it dropped.
// It is the capture substrate of the daemon's flight recorder — every
// request records its spans into a per-job ring, and only the rings of
// requests that degraded, errored, or breached the latency SLO are retained
// afterwards, so "trace everything, keep only the bad ones" costs a fixed
// amount of memory per request in flight.
//
// Emit is called under the tracer's lock (the Sink contract); Events and
// Dropped may be called concurrently from other goroutines, so the ring
// carries its own mutex.
type RingSink struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped int64
}

// NewRingSink returns a ring keeping the latest capacity events
// (default 4096 when capacity ≤ 0).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(e *Event) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, *e)
	} else {
		s.buf[s.next] = *e
		s.next = (s.next + 1) % cap(s.buf)
		s.full = true
		s.dropped++
	}
	s.mu.Unlock()
}

// Close implements Sink (no-op; the ring owns no resources).
func (s *RingSink) Close() error { return nil }

// Events returns the retained events oldest-first, as a copy.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// Dropped returns how many events were evicted to stay within capacity.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

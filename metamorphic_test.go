package sqlciv

import (
	"math/rand"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/corpus"
	"sqlciv/internal/grammar"
	"sqlciv/internal/policy"
)

// permutedCopy rebuilds the sub-grammar reachable from root with freshly
// numbered nonterminals in shuffled creation order and per-nonterminal
// production lists in shuffled insertion order — an α-renamed,
// production-permuted isomorph. Names and labels are preserved, so the two
// grammars describe the same annotated language.
func permutedCopy(g *grammar.Grammar, root grammar.Sym, seed int64) (*grammar.Grammar, grammar.Sym) {
	rng := rand.New(rand.NewSource(seed))
	reach := g.Reachable(root)
	var nts []grammar.Sym
	for i, ok := range reach {
		if ok {
			nts = append(nts, grammar.Sym(grammar.NumTerminals+i))
		}
	}
	rng.Shuffle(len(nts), func(i, j int) { nts[i], nts[j] = nts[j], nts[i] })
	out := grammar.New()
	remap := make(map[grammar.Sym]grammar.Sym, len(nts))
	for _, nt := range nts {
		nn := out.NewNT(g.RawName(nt))
		out.SetLabel(nn, g.LabelOf(nt))
		remap[nt] = nn
	}
	for _, nt := range nts {
		for _, pi := range rng.Perm(g.NumProdsOf(nt)) {
			rhs := g.Rhs(nt, pi)
			nr := make([]grammar.Sym, len(rhs))
			for k, s := range rhs {
				if grammar.IsTerminal(s) {
					nr[k] = s
				} else {
					nr[k] = remap[s]
				}
			}
			out.Add(remap[nt], nr...)
		}
	}
	out.SetStart(remap[root])
	return out, remap[root]
}

// TestMetamorphicInvariance checks, on real hotspot grammars from the
// corpus, that the analysis result is a function of the annotated language
// alone: an α-renamed, production-permuted isomorph must produce the same
// canonical fingerprint, the same policy reports (check kinds, labels,
// witnesses, sources, order), and the same shortest witness as the
// original.
func TestMetamorphicInvariance(t *testing.T) {
	const perApp = 8 // hotspots exercised per corpus app
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			checker := policy.New()
			seen := 0
			for _, entry := range app.Entries {
				if seen >= perApp {
					break
				}
				ar, err := analysis.Analyze(analysis.NewMapResolver(app.Sources), entry, analysis.Options{})
				if err != nil {
					t.Fatalf("%s: %v", entry, err)
				}
				for _, h := range ar.Hotspots {
					if seen >= perApp {
						break
					}
					seen++
					mut, mroot := permutedCopy(ar.G, h.Root, int64(seen)*7919)

					if fp, mfp := ar.G.Fingerprint(h.Root), mut.Fingerprint(mroot); fp != mfp {
						t.Errorf("%s:%d: fingerprint changed under α-renaming + production permutation", h.File, h.Line)
					}

					if w, ok := ar.G.WitnessString(h.Root); ok {
						mw, mok := mut.WitnessString(mroot)
						if !mok || mw != w {
							t.Errorf("%s:%d: witness changed: %q -> %q", h.File, h.Line, w, mw)
						}
					}

					orig := checker.CheckHotspot(ar.G, h.Root)
					perm := checker.CheckHotspot(mut, mroot)
					if orig.Verified != perm.Verified || len(orig.Reports) != len(perm.Reports) {
						t.Errorf("%s:%d: verdict changed: %d reports (verified=%v) -> %d (verified=%v)",
							h.File, h.Line, len(orig.Reports), orig.Verified, len(perm.Reports), perm.Verified)
						continue
					}
					for i := range orig.Reports {
						a, b := orig.Reports[i], perm.Reports[i]
						if a.Check != b.Check || a.Label != b.Label || a.Witness != b.Witness || a.Source != b.Source {
							t.Errorf("%s:%d report %d drifted:\n orig %v\n perm %v", h.File, h.Line, i, a, b)
						}
					}
				}
			}
			if seen == 0 {
				t.Skipf("no hotspots in the first entries of %s", app.Name)
			}
		})
	}
}

package sqlciv

import (
	"reflect"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/policy"
	"sqlciv/internal/vcache"
)

// TestCompactionPreservesVerdictsOnCorpus is the tentpole's differential
// oracle: for every hotspot of every Table 1 subject, the cascade over the
// compacted slice must produce bit-identical reports to the cascade over
// the original slice. Compaction is language- and label-preserving, and
// witnesses/derivability always run on the original slice, so any
// divergence is a compaction bug.
func TestCompactionPreservesVerdictsOnCorpus(t *testing.T) {
	on := policy.New()
	off := policy.New()
	off.Compact = false
	hotspots := 0
	for _, app := range corpus.Apps() {
		resolver := analysis.NewMapResolver(app.Sources)
		for _, entry := range app.Entries {
			ar, err := analysis.Analyze(resolver, entry, analysis.Options{})
			if err != nil {
				t.Fatalf("%s %s: %v", app.Name, entry, err)
			}
			for _, h := range ar.Hotspots {
				hotspots++
				got := on.CheckHotspot(ar.G, h.Root)
				want := off.CheckHotspot(ar.G, h.Root)
				if got.Verdict != want.Verdict {
					t.Errorf("%s %s:%d: verdict %v with compaction, %v without",
						app.Name, h.File, h.Line, got.Verdict, want.Verdict)
				}
				if !reflect.DeepEqual(got.Reports, want.Reports) {
					t.Errorf("%s %s:%d: reports diverged\ncompacted:   %+v\nuncompacted: %+v",
						app.Name, h.File, h.Line, got.Reports, want.Reports)
				}
				if got.LabeledNTs != want.LabeledNTs {
					t.Errorf("%s %s:%d: labeled-NT census %d with compaction, %d without",
						app.Name, h.File, h.Line, got.LabeledNTs, want.LabeledNTs)
				}
			}
		}
	}
	if hotspots == 0 {
		t.Fatal("corpus produced no hotspots")
	}
}

// TestWarmRunMatchesColdOnCorpus runs every Table 1 subject twice against
// one persistent verdict cache: the warm run must answer every check from
// disk and reproduce the cold run's findings exactly.
func TestWarmRunMatchesColdOnCorpus(t *testing.T) {
	for _, app := range corpus.Apps() {
		store, err := vcache.Open(t.TempDir())
		if err != nil {
			t.Fatalf("vcache.Open: %v", err)
		}
		opts := core.Options{VerdictCache: store}
		resolver := analysis.NewMapResolver(app.Sources)
		cold, err := core.AnalyzeApp(resolver, app.Entries, opts)
		if err != nil {
			t.Fatalf("%s cold: %v", app.Name, err)
		}
		if err := store.Flush(); err != nil {
			t.Fatalf("%s flush: %v", app.Name, err)
		}
		warm, err := core.AnalyzeApp(resolver, app.Entries, opts)
		if err != nil {
			t.Fatalf("%s warm: %v", app.Name, err)
		}
		if warm.DiskCacheHits == 0 || warm.DiskCacheMisses != 0 {
			t.Errorf("%s: warm run had %d disk hits, %d misses; want all hits",
				app.Name, warm.DiskCacheHits, warm.DiskCacheMisses)
		}
		if !reflect.DeepEqual(cold.Findings, warm.Findings) {
			t.Errorf("%s: warm findings diverged from cold\ncold: %+v\nwarm: %+v",
				app.Name, cold.Findings, warm.Findings)
		}
	}
}

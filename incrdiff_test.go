package sqlciv

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/incr"
)

// taintProbe is a second PHP segment appended after a page's padded HTML: a
// fresh direct flow into a quoted literal. Appending keeps every existing
// hotspot's line number, so the edit adds exactly one finding.
const taintProbe = "<?php\n$incr_probe = $_GET['incr_probe'];\nmysql_query(\"SELECT * FROM incr_probe WHERE name='$incr_probe'\");\n?>\n"

func cloneSources(src map[string]string) map[string]string {
	out := make(map[string]string, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// assertSameOutcome compares the parts of two AppResults that are analysis
// results proper (not timings or cache traffic): findings, degradations, and
// the Table 1 census.
func assertSameOutcome(t *testing.T, label string, want, got *core.AppResult) {
	t.Helper()
	if !reflect.DeepEqual(want.Findings, got.Findings) {
		t.Errorf("%s: findings diverged\ncold: %+v\nincr: %+v", label, want.Findings, got.Findings)
	}
	if want.DegradedPages != got.DegradedPages || want.DegradedHotspots != got.DegradedHotspots {
		t.Errorf("%s: degradation census diverged: cold %d/%d, incr %d/%d", label,
			want.DegradedPages, want.DegradedHotspots, got.DegradedPages, got.DegradedHotspots)
	}
	if want.Files != got.Files || want.Lines != got.Lines ||
		want.NumNTs != got.NumNTs || want.NumProds != got.NumProds {
		t.Errorf("%s: census diverged: cold files=%d lines=%d |V|=%d |R|=%d, incr files=%d lines=%d |V|=%d |R|=%d",
			label, want.Files, want.Lines, want.NumNTs, want.NumProds,
			got.Files, got.Lines, got.NumNTs, got.NumProds)
	}
	if want.HotspotsChecked() != got.HotspotsChecked() {
		t.Errorf("%s: hotspot census diverged: cold %d, incr %d", label,
			want.HotspotsChecked(), got.HotspotsChecked())
	}
}

// TestIncrementalDifferentialOnCorpus is the incremental layer's oracle: for
// every Table 1 subject, mutate one file three ways — touch-only (rewrite
// the same bytes), an append-only comment edit, and a real taint-relevant
// edit — re-analyze through a warm session, and require the findings to be
// byte-identical to a cold full run over the mutated sources. The touch-only
// case must additionally recompute zero pages, re-parse zero files, and
// re-check zero hotspots; the content edits must recompute exactly the one
// dirtied page.
func TestIncrementalDifferentialOnCorpus(t *testing.T) {
	edits := []struct {
		name  string
		apply func(string) string
		dirty bool // does the edit change the file's bytes?
	}{
		{"touch", func(s string) string { return s }, false},
		{"comment", func(s string) string { return s + "<!-- incremental cache probe -->\n" }, true},
		{"taint", func(s string) string { return s + taintProbe }, true},
	}
	for _, app := range corpus.Apps() {
		target := app.Entries[0]
		for _, edit := range edits {
			label := app.Name + "/" + edit.name

			ses := core.NewSession(core.SessionConfig{})
			base, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
				app.Entries, core.Options{Session: ses})
			if err != nil {
				t.Fatalf("%s base: %v", label, err)
			}
			if base.Incr == nil || base.Incr.PagesRecomputed != int64(len(app.Entries)) {
				t.Fatalf("%s: cold fill did not recompute all pages: %+v", label, base.Incr)
			}

			mutated := cloneSources(app.Sources)
			mutated[target] = edit.apply(mutated[target])
			warm, err := core.AnalyzeApp(analysis.NewMapResolver(mutated),
				app.Entries, core.Options{Session: ses})
			if err != nil {
				t.Fatalf("%s warm: %v", label, err)
			}
			cold, err := core.AnalyzeApp(analysis.NewMapResolver(mutated),
				app.Entries, core.Options{})
			if err != nil {
				t.Fatalf("%s cold: %v", label, err)
			}
			assertSameOutcome(t, label, cold, warm)

			in := warm.Incr
			if in == nil {
				t.Fatalf("%s: warm run reported no incremental stats", label)
			}
			if !edit.dirty {
				if in.PagesRecomputed != 0 || in.HotspotsRechecked != 0 || in.FilesParsed != 0 {
					t.Errorf("%s: touch-only run recomputed %d pages, re-checked %d hotspots, parsed %d files; want all zero",
						label, in.PagesRecomputed, in.HotspotsRechecked, in.FilesParsed)
				}
			} else {
				// The edited file is an entry page no other page includes, so
				// exactly one page dirties and only the edited file re-parses
				// (its unchanged includes come from the session parse cache).
				if in.PagesRecomputed != 1 {
					t.Errorf("%s: recomputed %d pages, want exactly 1", label, in.PagesRecomputed)
				}
				if in.PagesReplayed != int64(len(app.Entries)-1) {
					t.Errorf("%s: replayed %d pages, want %d", label, in.PagesReplayed, len(app.Entries)-1)
				}
				if in.FilesParsed != 1 {
					t.Errorf("%s: parsed %d files, want exactly 1 (the edited file)", label, in.FilesParsed)
				}
			}
			if edit.name == "taint" && len(cold.Findings) != len(base.Findings)+1 {
				t.Errorf("%s: taint edit changed findings %d -> %d, want exactly one new",
					label, len(base.Findings), len(cold.Findings))
			}
		}
	}
}

// TestIncrementalReplayFromSummaryStore exercises the cross-process path: a
// fresh session over an unchanged project must replay every page from the
// persistent summary store — zero parses, zero phase-1 runs, zero hotspot
// checks — and still reproduce the cold findings exactly.
func TestIncrementalReplayFromSummaryStore(t *testing.T) {
	for _, app := range corpus.Apps() {
		store, err := incr.Open(t.TempDir())
		if err != nil {
			t.Fatalf("incr.Open: %v", err)
		}
		cold, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
			app.Entries, core.Options{Session: core.NewSession(core.SessionConfig{Summaries: store})})
		if err != nil {
			t.Fatalf("%s cold: %v", app.Name, err)
		}
		if err := store.Flush(); err != nil {
			t.Fatalf("%s flush: %v", app.Name, err)
		}

		// A brand-new session simulates a process restart: its only warmth is
		// the on-disk summaries.
		warm, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
			app.Entries, core.Options{Session: core.NewSession(core.SessionConfig{Summaries: store})})
		if err != nil {
			t.Fatalf("%s warm: %v", app.Name, err)
		}
		in := warm.Incr
		if in == nil || in.PagesReplayed != int64(len(app.Entries)) || in.PagesRecomputed != 0 {
			t.Fatalf("%s: store-warm run did not replay all pages: %+v", app.Name, in)
		}
		if in.SummaryHits != int64(len(app.Entries)) {
			t.Errorf("%s: %d summary hits, want %d", app.Name, in.SummaryHits, len(app.Entries))
		}
		if in.FilesParsed != 0 || in.HotspotsRechecked != 0 {
			t.Errorf("%s: store-warm run parsed %d files, re-checked %d hotspots; want zero",
				app.Name, in.FilesParsed, in.HotspotsRechecked)
		}
		if !reflect.DeepEqual(cold.Findings, warm.Findings) {
			t.Errorf("%s: store-replayed findings diverged\ncold: %+v\nwarm: %+v",
				app.Name, cold.Findings, warm.Findings)
		}
	}
}

// TestIncrementalCorruptSummariesRecompute corrupts every persisted page
// summary and requires the next run to degrade to a full cold recompute with
// identical findings — a bad store can cost time, never findings.
func TestIncrementalCorruptSummariesRecompute(t *testing.T) {
	app := corpus.EVE()
	dir := t.TempDir()
	store, err := incr.Open(dir)
	if err != nil {
		t.Fatalf("incr.Open: %v", err)
	}
	cold, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
		app.Entries, core.Options{Session: core.NewSession(core.SessionConfig{Summaries: store})})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := store.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	corrupted := 0
	if err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".json") {
			return err
		}
		corrupted++
		return os.WriteFile(p, []byte("{definitely not a summary"), 0o644)
	}); err != nil {
		t.Fatalf("corrupting store: %v", err)
	}
	if corrupted == 0 {
		t.Fatal("no summaries were flushed to disk")
	}

	warm, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
		app.Entries, core.Options{Session: core.NewSession(core.SessionConfig{Summaries: store})})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	in := warm.Incr
	if in == nil || in.PagesReplayed != 0 || in.PagesRecomputed != int64(len(app.Entries)) {
		t.Fatalf("corrupted store did not force a cold recompute: %+v", in)
	}
	if in.SummaryErrors != int64(len(app.Entries)) {
		t.Errorf("summary errors = %d, want %d", in.SummaryErrors, len(app.Entries))
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Errorf("findings diverged after store corruption\ncold: %+v\nwarm: %+v",
			cold.Findings, warm.Findings)
	}
}

// TestIncrementalEditRecheckBudget is the CI smoke gate: after editing one
// Tiger file, the incremental re-check must re-run the cascade for fewer
// than 10% of the application's hotspots.
func TestIncrementalEditRecheckBudget(t *testing.T) {
	app := corpus.Tiger()
	ses := core.NewSession(core.SessionConfig{})
	base, err := core.AnalyzeApp(analysis.NewMapResolver(cloneSources(app.Sources)),
		app.Entries, core.Options{Session: ses})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	total := base.HotspotsChecked()
	if total == 0 {
		t.Fatal("Tiger produced no hotspots")
	}

	mutated := cloneSources(app.Sources)
	mutated["static0.php"] += "<!-- edited -->\n"
	warm, err := core.AnalyzeApp(analysis.NewMapResolver(mutated), app.Entries,
		core.Options{Session: ses})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	in := warm.Incr
	if in == nil {
		t.Fatal("warm run reported no incremental stats")
	}
	if rechecked := in.HotspotsRechecked; rechecked*10 >= int64(total) {
		t.Errorf("edit re-checked %d of %d hotspots (%.1f%%); want < 10%%",
			rechecked, total, 100*float64(rechecked)/float64(total))
	}
}

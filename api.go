// Package sqlciv is a Go implementation of the grammar-based static
// analysis for SQL command injection vulnerabilities from Wassermann & Su,
// "Sound and Precise Analysis of Web Applications for Injection
// Vulnerabilities" (PLDI 2007).
//
// The analyzer characterizes every database query a PHP web application can
// issue as a context-free grammar with taint-labeled nonterminals, models
// string operations as finite state transducers, refines branch
// environments with the languages of regex guards, and checks that every
// user-influenced substring is syntactically confined within the query
// (Definition 2.3). No per-query specifications are needed; absence of
// reports is a soundness guarantee relative to the modeled PHP subset.
//
// This package re-exports the high-level entry points; the building blocks
// live under internal/ (grammar, automata, rx, fst, php, phplib, analysis,
// policy, sqlgram, deriv, taintcheck, corpus, server).
//
// Besides the in-process entry points below, the analyzer runs as a
// service: cmd/sqlcheckd is a resident daemon whose warm caches (verdict
// memo and disk store, DFA and terminal-run interns, byte-class
// partitions) amortize across submissions; client.go in this package holds
// the matching HTTP client (Client, AnalyzeRequest, AnalyzeResponse,
// JobStatus) and NewServer for embedding the same engine in other
// processes.
//
// Quick start:
//
//	resolver := sqlciv.NewMapResolver(map[string]string{"page.php": src})
//	result, err := sqlciv.AnalyzeApp(resolver, []string{"page.php"}, sqlciv.Options{})
//	if err != nil { ... }
//	if !result.Verified() {
//	    for _, f := range result.Findings { fmt.Println(f) }
//	}
package sqlciv

import (
	"context"

	"sqlciv/internal/analysis"
	"sqlciv/internal/budget"
	"sqlciv/internal/core"
	"sqlciv/internal/obs"
)

// Options configures an analysis run.
type Options = core.Options

// AppResult is the aggregated outcome for an application.
type AppResult = core.AppResult

// Finding is one deduplicated SQLCIV report.
type Finding = core.Finding

// Limits bounds an analysis run's resources (wall clock, per-unit steps and
// memory). The zero value is unlimited. Over-budget units degrade to
// explicit analysis-incomplete findings — never a silent pass.
type Limits = budget.Limits

// Degradation records one analysis unit that was cut short.
type Degradation = core.Degradation

// Tracer observes a run: hierarchical spans around every analysis unit,
// per-unit counters, and live progress totals, fanned out to pluggable
// sinks. Set one on Options.Tracer; a nil tracer disables all tracing at
// zero cost.
type Tracer = obs.Tracer

// TraceSink receives completed span events from a Tracer.
type TraceSink = obs.Sink

// NewTracer returns a Tracer fanning out to the given sinks.
func NewTracer(sinks ...obs.Sink) *Tracer { return obs.New(sinks...) }

// NewJSONLSink returns a sink writing one JSON event per line; decode with
// obs.DecodeJSONL.
var NewJSONLSink = obs.NewJSONLSink

// NewChromeSink returns a sink writing the Chrome trace-event format
// (loadable in Perfetto or chrome://tracing).
var NewChromeSink = obs.NewChromeSink

// AutoParallel maps the CLI parallelism convention (0 = one worker per
// core) onto the Options convention (0 or 1 = sequential).
func AutoParallel(n int) int { return core.AutoParallel(n) }

// Resolver supplies PHP sources to the analyzer.
type Resolver = analysis.Resolver

// NewMapResolver returns a Resolver over an in-memory path→source map.
func NewMapResolver(sources map[string]string) *analysis.MapResolver {
	return analysis.NewMapResolver(sources)
}

// AnalyzeApp analyzes the given entry pages of an application and returns
// the verified/bug-report outcome with Table 1-style statistics.
func AnalyzeApp(resolver Resolver, entries []string, opts Options) (*AppResult, error) {
	return core.AnalyzeApp(resolver, entries, opts)
}

// AnalyzeAppCtx is AnalyzeApp under ctx: cancellation, ctx's deadline, and
// the limits in opts.Budget degrade the affected pages or hotspots to
// analysis-incomplete findings while the rest of the run completes
// normally.
func AnalyzeAppCtx(ctx context.Context, resolver Resolver, entries []string, opts Options) (*AppResult, error) {
	return core.AnalyzeAppCtx(ctx, resolver, entries, opts)
}

GO ?= go

.PHONY: build test check bench fuzz-smoke

# Each fuzz target gets a short randomized burn beyond its seed corpus.
FUZZ_TIME ?= 30s
FUZZ_TARGETS = \
	FuzzParse:./internal/php \
	FuzzConfined:./internal/sqlgram \
	FuzzRun:./internal/interp \
	FuzzParseCompile:./internal/rx \
	FuzzAnalyze:./internal/analysis \
	FuzzIntersect:./internal/grammar

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, build, and the full test suite under the race
# detector (the analyzer runs pages and hotspot checks concurrently).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1' -benchtime 2x .

# fuzz-smoke runs every fuzz target for FUZZ_TIME each — long enough to
# shake out shallow regressions, short enough for CI.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t#*:}; \
		echo "== $$name ($$pkg)"; \
		$(GO) test -run '^$$' -fuzz "^$$name\$$" -fuzztime $(FUZZ_TIME) $$pkg; \
	done

GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, build, and the full test suite under the race
# detector (the analyzer runs pages and hotspot checks concurrently).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1' -benchtime 2x .

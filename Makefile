GO ?= go

.PHONY: build test check bench bench-classes bench-diff bench-mem bench-server bench-incremental bench-enforce bench-enforce-diff trace-smoke fuzz-smoke daemon-smoke metrics-smoke

# Each fuzz target gets a short randomized burn beyond its seed corpus.
FUZZ_TIME ?= 30s
FUZZ_TARGETS = \
	FuzzParse:./internal/php \
	FuzzConfined:./internal/sqlgram \
	FuzzRun:./internal/interp \
	FuzzParseCompile:./internal/rx \
	FuzzAnalyze:./internal/analysis \
	FuzzIntersect:./internal/grammar \
	FuzzByteClasses:./internal/rx \
	FuzzServerRequest:./internal/server \
	FuzzPackLoad:./internal/enforce

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, build, the full test suite under the race
# detector (the analyzer runs pages and hotspot checks concurrently; this
# includes the golden report tests and the obs tracer suite), then an
# end-to-end traced -table1 run in both export formats.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) trace-smoke

# bench runs the Table 1 suite with -benchmem and records every metric
# (ns/op, allocs, grammar census, verdict-cache hit rate) to
# BENCH_table1.json via cmd/benchjson. The raw go-test output still streams
# to the terminal.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1' -benchtime 2x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_table1.json

# bench-classes is the alphabet-compression canary: every prebuilt policy
# and XSS check DFA must stay within the byte-class budget (24 classes).
# A check automaton growing past that bound means some construction started
# distinguishing bytes the policy does not care about, which would inflate
# every relation fixpoint seeded from it. Verbose so the per-DFA census
# (states / classes / slab bytes) lands in the CI log.
bench-classes:
	$(GO) test -run TestCheckDFAClassBudget -v ./internal/policy ./internal/xss

# bench-diff is the performance ratchet: bench the working tree into
# BENCH_new.json (not committed) and compare it against the committed
# BENCH_table1.json baseline. Wall-clock gets a loose band (2x-iteration
# runs are noisy); the allocation metrics are nearly deterministic, so B/op
# and allocs/op ratchet much tighter — an allocator regression fails here
# even when ns/op hides it. The full comparison lands in bench-diff.json
# (CI uploads it as an artifact).
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1' -benchtime 2x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_new.json
	$(GO) run ./cmd/benchdiff -metrics 'ns/op:25,B/op:15,allocs/op:10' -o bench-diff.json \
		BENCH_table1.json BENCH_new.json

# bench-mem is the allocator smoke: a short pass over the two biggest
# subjects with -benchmem, ratcheting only the allocation metrics (tight
# bands, no wall-clock — B/op and allocs/op barely move run to run, so this
# is cheap enough to gate every PR). -benchtime must match the committed
# baseline's (2x): per-op numbers amortize one-time process-global warmup
# (intern pool, interned DFAs, rx caches) over the iteration count, so a
# different count skews the first subject's B/op. Note for noisy hosts: with
# GODEBUG=madvdontneed=1 the runtime returns memory eagerly, which perturbs
# RSS-based observations but NOT B/op or allocs/op — those count
# allocations, not resident pages, so the ratchet is immune to that knob.
bench-mem:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1_(Tiger|E107)$$' -benchtime 2x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_mem.json
	$(GO) run ./cmd/benchdiff -metrics 'B/op:15,allocs/op:10' -o bench-mem-diff.json \
		BENCH_table1.json BENCH_mem.json

# bench-server measures the daemon's serving throughput: warm HTTP+JSON
# round trips per second (sync and async, single subjects and a mixed
# fleet) plus custom metrics — warm-hit-% (the fraction of hotspot checks a
# warm resident server answers from its verdict-cache tiers instead of
# recomputing) and p99-ms (the server's own request-latency histogram over
# /v1/analyze). Each run also prints a "benchsnap" line carrying the full
# served metrics snapshot, which benchjson records under "snapshots".
# Records to BENCH_server.json; the EXPERIMENTS.md analysis-as-a-service
# table comes from this file.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchtime 5x ./internal/server \
		| $(GO) run ./cmd/benchjson -o BENCH_server.json

# bench-incremental measures incremental re-analysis per Table 1 subject:
# the Cold benchmarks are the from-scratch baseline (fresh session each
# iteration), the Edit benchmarks re-analyze through a warm session after
# editing exactly one entry page. The headline number is the Edit/Cold
# ns/op ratio per subject; the custom metrics (incr-page-replay-pct,
# incr-hotspot-replay-pct, incr-file-reuse-pct, files-parsed) pin how much
# of the app was replayed rather than recomputed. Records to
# BENCH_incremental.json; the EXPERIMENTS.md incremental table comes from
# this file.
bench-incremental:
	$(GO) test -run '^$$' -bench 'BenchmarkIncremental' -benchtime 5x . \
		| $(GO) run ./cmd/benchjson -o BENCH_incremental.json

# bench-enforce measures the runtime enforcement engine: queries/sec through
# the zero-alloc pack matcher (target ≥1M/s single-core), ns per query byte,
# serialized pack size, and the false-block rate over the legit witness
# corpus (must be 0 — the pack language over-approximates each hotspot's
# derived language). BenchmarkEnforceCompile adds the pack-compilation cost
# itself. Records to BENCH_enforcement.json; the EXPERIMENTS.md enforcement
# table comes from this file.
bench-enforce:
	$(GO) test -run '^$$' -bench 'BenchmarkEnforce' -benchtime 2s -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_enforcement.json

# bench-enforce-diff is the zero-alloc ratchet: re-bench the matcher into
# BENCH_enforce_new.json (not committed) and diff against the committed
# BENCH_enforcement.json baseline. allocs/op has a zero baseline, which
# benchdiff ratchets absolutely — any allocation on the enforcement hot path
# fails CI regardless of band. queries/s is deliberately not ratcheted
# (wall-clock noise); ns/op gets the usual loose band.
bench-enforce-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkEnforceMatch' -benchtime 2s -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_enforce_new.json
	$(GO) run ./cmd/benchdiff -metrics 'ns/op:50,B/op:0,allocs/op:0' -o bench-enforce-diff.json \
		BENCH_enforcement.json BENCH_enforce_new.json

# daemon-smoke is the end-to-end service check: start sqlcheckd on a
# loopback port with a throwaway verdict-cache dir, submit a corpus subject
# through the real HTTP surface with the library client — sync, then async
# with polling — and require the known findings plus a warm cache hit on
# the repeat.
daemon-smoke:
	$(GO) run ./cmd/sqlcheckd -smoke -cache-dir "$$(mktemp -d)"

# metrics-smoke is the end-to-end telemetry check: boot sqlcheckd on a
# loopback port, serve one healthy and one budget-starved (degraded)
# analyze, then require that /metrics parses as strict Prometheus text with
# every core series family present and that the degraded request's full
# span trace is still retrievable from /debug/flight after the fact.
metrics-smoke:
	$(GO) run ./cmd/sqlcheckd -metrics-smoke

# trace-smoke exercises the observability surface end to end: a -table1 run
# with a Chrome trace (Perfetto-loadable; CI uploads it as an artifact) and
# a JSONL trace.
trace-smoke:
	$(GO) run ./cmd/sqlcheck -table1 -trace table1-trace.json -trace-format chrome > /dev/null
	$(GO) run ./cmd/sqlcheck -table1 -trace table1-trace.jsonl -trace-format jsonl > /dev/null

# fuzz-smoke runs every fuzz target for FUZZ_TIME each — long enough to
# shake out shallow regressions, short enough for CI.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t#*:}; \
		echo "== $$name ($$pkg)"; \
		$(GO) test -run '^$$' -fuzz "^$$name\$$" -fuzztime $(FUZZ_TIME) $$pkg; \
	done

package sqlciv

import (
	"fmt"
	"os"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
)

// TestDumpFindingsSnapshot writes every corpus finding to the file named by
// SQLCIV_SNAPSHOT, for before/after bit-identity comparison. Skipped unless
// the variable is set.
func TestDumpFindingsSnapshot(t *testing.T) {
	path := os.Getenv("SQLCIV_SNAPSHOT")
	if path == "" {
		t.Skip("SQLCIV_SNAPSHOT not set")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, app := range corpus.Apps() {
		res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(f, "== %s |V|=%d |R|=%d\n", app.Name, res.NumNTs, res.NumProds)
		for _, fd := range res.Findings {
			fmt.Fprintf(f, "%s\n", fd.String())
		}
		fmt.Fprint(f, res.Summary())
	}
}

// Quickstart: analyze a tiny vulnerable PHP page and print the verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
)

const page = `<?php
$userid = $_GET['userid'];
if (!eregi('[0-9]+', $userid)) {     // BUG: no ^...$ anchors
    exit;
}
mysql_query("SELECT * FROM users WHERE userid='$userid'");
`

func main() {
	resolver := analysis.NewMapResolver(map[string]string{"page.php": page})
	res, err := core.AnalyzeApp(resolver, []string{"page.php"}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== quickstart: the paper's Figure 2 in one page ==")
	fmt.Print(res.Summary())
	if res.Verified() {
		log.Fatal("unexpected: the unanchored guard should be reported")
	}
	fmt.Println("\nThe guard eregi('[0-9]+', ...) lacks anchors, so any input")
	fmt.Println("containing a digit — e.g. \"1'; DROP TABLE users; --\" — passes")
	fmt.Println("and breaks out of the string literal. Anchoring the pattern")
	fmt.Println("(^[0-9]+$) makes the same page verify:")

	fixed := `<?php
$userid = $_GET['userid'];
if (!eregi('^[0-9]+$', $userid)) {
    exit;
}
mysql_query("SELECT * FROM users WHERE userid='$userid'");
`
	resolver2 := analysis.NewMapResolver(map[string]string{"page.php": fixed})
	res2, err := core.AnalyzeApp(resolver2, []string{"page.php"}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res2.Summary())
}

// Grammartour: a tour of the underlying machinery — labeled CFGs, regex
// condition languages, taint-propagating CFG ∩ FSA intersection (Figure 7),
// FST images of grammars (Figure 6), and the Definition 2.2 confinement
// oracle — used directly as a library, without any PHP in sight.
//
//	go run ./examples/grammartour
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlciv/internal/fst"
	"sqlciv/internal/grammar"
	"sqlciv/internal/rx"
	"sqlciv/internal/sqlgram"
)

func main() {
	// 1. A labeled query grammar, built by hand:
	//    query → "SELECT * FROM t WHERE id='" userid "'"
	//    userid → Σ* (direct taint)
	g := grammar.New()
	query := g.NewNT("query")
	userid := g.NewNT("userid")
	g.AddLabel(userid, grammar.Direct)
	sigma := g.NewNT("sigma")
	g.Add(sigma)
	for c := 0; c < 256; c++ {
		g.Add(sigma, grammar.T(byte(c)), sigma)
	}
	g.Add(userid, sigma)
	rhs := grammar.TermString("SELECT * FROM t WHERE id='")
	rhs = append(rhs, userid, grammar.T('\''))
	g.Add(query, rhs...)
	g.SetStart(query)
	fmt.Println("1. built a query grammar; userid is labeled", g.LabelOf(userid))

	// 2. Refine userid with the Figure 2 guard language: strings matching
	//    the unanchored [0-9]+ somewhere.
	re, err := rx.Parse("[0-9]+", true)
	if err != nil {
		log.Fatal(err)
	}
	refined, ok := grammar.IntersectInto(g, userid, re.MatchDFA())
	if !ok {
		log.Fatal("intersection unexpectedly empty")
	}
	fmt.Println("2. intersected with the unanchored digit guard (Figure 7)")
	fmt.Println("   still derives the attack payload?",
		g.DerivesString(refined, "1'; DROP TABLE t; --"))
	fmt.Println("   derives a digit-free payload?",
		g.DerivesString(refined, "x); DELETE FROM t"))

	// 3. Transduce through addslashes (an FST image, §3.1.2).
	escaped, ok := fst.ImageInto(g, refined, fst.AddSlashes())
	if !ok {
		log.Fatal("image unexpectedly empty")
	}
	fmt.Println("3. applied the addslashes transducer")
	fmt.Println("   image still contains an unescaped quote?",
		g.DerivesString(escaped, "1'"))
	fmt.Println("   image contains the escaped form?",
		g.DerivesString(escaped, `1\'`))

	// 4. The Figure 6 transducer: str_replace("''", "'").
	f6 := fst.SQLQuoteUnescape()
	out, _ := f6.Apply("it''s")
	fmt.Printf("4. Figure 6 FST: %q -> %q\n", "it''s", out)

	// 5. The Definition 2.2 oracle on a rendered query.
	sql := sqlgram.Get()
	q := "SELECT * FROM t WHERE id='1'; DROP TABLE t; --'"
	inj := "1'; DROP TABLE t; --"
	i := strings.Index(q, inj)
	fmt.Printf("5. oracle: is %q confined in the rendered query? %v\n",
		inj, sql.Confined(q, i, i+len(inj)))
	benign := "SELECT * FROM t WHERE id='42'"
	j := strings.Index(benign, "42")
	fmt.Printf("   and the benign \"42\"? %v\n", sql.Confined(benign, j, j+2))
}

// Sanitizers: shows why modeling sanitizer *semantics* beats binary taint
// tracking (the paper's §1.1 motivating comparison). The same escaping
// function is safe in a quoted context and exploitable in a numeric
// context; the grammar-based analysis distinguishes the two, the taint
// baseline cannot — in either direction.
//
//	go run ./examples/sanitizers
package main

import (
	"fmt"
	"log"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/taintcheck"
)

type scenario struct {
	name    string
	src     string
	exploit string // "" when actually safe
}

var scenarios = []scenario{
	{
		name: "addslashes, quoted context (safe)",
		src: `<?php
$name = addslashes($_GET['name']);
mysql_query("SELECT * FROM users WHERE name='$name'");
`,
	},
	{
		name: "addslashes, numeric context (exploitable!)",
		src: `<?php
$id = addslashes($_GET['id']);
mysql_query("SELECT * FROM users WHERE id=" . $id);
`,
		exploit: "id=1 OR 1=1 — no quote needed, escaping does nothing",
	},
	{
		name: "anchored numeric guard, numeric context (safe)",
		src: `<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
mysql_query("SELECT * FROM users WHERE id=$id");
`,
	},
	{
		name: "htmlspecialchars default, quoted context (exploitable!)",
		src: `<?php
$c = htmlspecialchars($_GET['c']);
mysql_query("SELECT * FROM t WHERE c='$c'");
`,
		exploit: "ENT_COMPAT leaves single quotes alone — ' breaks out",
	},
}

func main() {
	fmt.Println("scenario                                              grammar-based   taint baseline   ground truth")
	fmt.Println("----------------------------------------------------  -------------   --------------   ------------")
	for _, sc := range scenarios {
		resolver := analysis.NewMapResolver(map[string]string{"page.php": sc.src})
		res, err := core.AnalyzeApp(resolver, []string{"page.php"}, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base, err := taintcheck.Check(analysis.NewMapResolver(map[string]string{"page.php": sc.src}), []string{"page.php"})
		if err != nil {
			log.Fatal(err)
		}
		ours := "VERIFIED"
		if !res.Verified() {
			ours = "REPORTED"
		}
		baseline := "clean"
		if len(base.Findings) > 0 {
			baseline = "REPORTED"
		}
		truth := "safe"
		if sc.exploit != "" {
			truth = "VULNERABLE"
		}
		fmt.Printf("%-53s  %-14s  %-15s  %s\n", sc.name, ours, baseline, truth)
	}
	fmt.Println()
	fmt.Println("Rows 2-4 are the paper's point. The baseline trusts 'sanitizers'")
	fmt.Println("unconditionally: it misses the numeric-context exploit (row 2) and")
	fmt.Println("the htmlspecialchars quote pass-through (row 4), while reporting a")
	fmt.Println("false positive on the airtight anchored guard (row 3). Modeling the")
	fmt.Println("operations as transducers and checking the query grammar gets all")
	fmt.Println("four right.")
}

// Newsaudit: a full audit of the Utopia News Pro stand-in — the paper's
// primary case study — printing every finding with its witness, then the
// annotated query grammar of the Figure 2 hotspot (the paper's Figure 4).
//
//	go run ./examples/newsaudit
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/grammar"
)

func main() {
	app := corpus.Utopia()
	fmt.Printf("== auditing %s (%d files, %d lines) ==\n\n", app.Name, len(app.Sources), app.TotalLines())

	res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())

	// Classify against the planted ground truth.
	real, falsePos, indirect := 0, 0, 0
	for _, f := range res.Findings {
		switch {
		case !f.Direct():
			indirect++
		case app.FalseFiles[f.File]:
			falsePos++
		default:
			real++
		}
	}
	fmt.Printf("\nground truth: %d real direct, %d false positives, %d indirect\n", real, falsePos, indirect)
	fmt.Printf("paper Table 1: %s direct, %d indirect\n", app.Paper.Direct, app.Paper.Indirect)

	// Figure 4: the annotated grammar of the members.php hotspot.
	ar, err := analysis.Analyze(analysis.NewMapResolver(app.Sources), "members.php", analysis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range ar.Hotspots {
		if h.File != "members.php" {
			continue
		}
		sub, remap := ar.G.Extract(h.Root)
		fmt.Printf("\n== Figure 4: query grammar at %s:%d (|V|=%d |R|=%d) ==\n",
			h.File, h.Line, sub.NumNTs(), sub.NumProds())
		if w, ok := sub.WitnessString(remap[h.Root]); ok {
			fmt.Printf("shortest query: %q\n", w)
		}
		attack := "SELECT * FROM unp_user WHERE userid='1'; DROP TABLE unp_user; --'"
		fmt.Printf("derives the Figure 2 attack? %v\n", sub.DerivesString(remap[h.Root], attack))
		var labeled []string
		for i := 0; i < sub.NumNTs(); i++ {
			nt := grammar.Sym(grammar.NumTerminals + i)
			if sub.LabelOf(nt) != 0 {
				labeled = append(labeled, fmt.Sprintf("%s[%s]", sub.Name(nt), sub.LabelOf(nt)))
			}
		}
		fmt.Printf("labeled nonterminals: %s\n", strings.Join(labeled, ", "))
	}
}

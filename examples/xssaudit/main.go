// Xssaudit: the paper's proposed extension (§7) in action — the same
// grammar machinery, pointed at HTML output instead of SQL queries. Shows
// context-sensitive verdicts: the identical sanitizer call is safe in one
// HTML context and vulnerable in another.
//
//	go run ./examples/xssaudit
package main

import (
	"fmt"
	"log"

	"sqlciv/internal/analysis"
	"sqlciv/internal/xss"
)

type page struct {
	name string
	src  string
	note string
}

var pages = []page{
	{
		name: "reflected search (vulnerable)",
		src: `<?php
echo '<p>You searched for ' . $_GET['q'] . '</p>';
`,
		note: "raw input in text context: <script> injection",
	},
	{
		name: "encoded search (safe)",
		src: `<?php
echo '<p>You searched for ' . htmlspecialchars($_GET['q']) . '</p>';
`,
		note: "htmlspecialchars encodes '<': text context is safe",
	},
	{
		name: "double-quoted attribute (safe)",
		src: `<?php
echo '<a href="' . htmlspecialchars($_GET['url']) . '">link</a>';
`,
		note: "ENT_COMPAT encodes double quotes: cannot break out",
	},
	{
		name: "single-quoted attribute (vulnerable!)",
		src: `<?php
echo "<a href='" . htmlspecialchars($_GET['url']) . "'>link</a>";
`,
		note: "default htmlspecialchars leaves single quotes alone",
	},
	{
		name: "single-quoted attribute, ENT_QUOTES (safe)",
		src: `<?php
echo "<a href='" . htmlspecialchars($_GET['url'], ENT_QUOTES) . "'>link</a>";
`,
		note: "ENT_QUOTES also encodes single quotes",
	},
	{
		name: "stored comment (vulnerable, indirect)",
		src: `<?php
$row = mysql_fetch_assoc($r);
echo '<div class="comment">' . $row['text'] . '</div>';
`,
		note: "database content echoed raw: stored XSS",
	},
}

func main() {
	fmt.Println("page                                            verdict     detail")
	fmt.Println("----------------------------------------------  ----------  ------")
	for _, p := range pages {
		findings, err := xss.Audit(
			analysis.NewMapResolver(map[string]string{"p.php": p.src}),
			[]string{"p.php"}, analysis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "VERIFIED"
		detail := p.note
		if len(findings) > 0 {
			verdict = "REPORTED"
			detail = fmt.Sprintf("%s — %s", findings[0].Check, p.note)
		}
		fmt.Printf("%-46s  %-10s  %s\n", p.name, verdict, detail)
	}
	fmt.Println()
	fmt.Println("Same transducer models, same grammar contexts, different sink policy:")
	fmt.Println("exactly the generalization the paper sketches in its conclusion.")
}

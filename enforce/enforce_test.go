package enforce

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqlciv/internal/automata"
	ienforce "sqlciv/internal/enforce"
	"sqlciv/internal/grammar"
)

func testPack(t *testing.T) *Pack {
	t.Helper()
	g := grammar.New()
	s := g.NewNT("S")
	v := g.NewNT("V")
	g.Add(s, append(append([]grammar.Sym{}, grammar.TermString("SELECT name FROM t WHERE id='")...), v, grammar.T('\''))...)
	g.Add(v, v, grammar.T('7'))
	g.Add(v)
	g.SetStart(s)
	c, ok := ienforce.BuildAutomaton([]ienforce.GrammarSlice{{G: g, Root: s}}, ienforce.ApproxCaps{})
	if !ok {
		t.Fatal("BuildAutomaton failed")
	}
	data, _, err := ienforce.Compile([]ienforce.BuildEntry{
		{Key: "shop.php:42", Automaton: c, Verified: true},
		{Key: "legacy.php:9", Automaton: (*automata.CDFA)(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardModes(t *testing.T) {
	p := testPack(t)
	legit := "SELECT name FROM t WHERE id='77'"
	attack := "SELECT name FROM t WHERE id='' OR '1'='1'"

	var logged []Decision
	g := NewGuard(p, ModeBlock)
	g.Log = func(d Decision) { logged = append(logged, d) }

	if d := g.CheckString("shop.php:42", legit); !d.Allowed || !d.InLanguage || d.Reason != "" {
		t.Fatalf("legit blocked: %+v", d)
	}
	if d := g.CheckString("shop.php:42", attack); d.Allowed || d.Reason != ReasonOutsideLanguage {
		t.Fatalf("attack not blocked: %+v", d)
	}
	// Fail closed on hotspots the pack does not know or cannot enforce.
	if d := g.CheckString("nowhere.php:1", legit); d.Allowed || d.Reason != ReasonUnknownHotspot {
		t.Fatalf("unknown hotspot not blocked: %+v", d)
	}
	if d := g.Check("legacy.php:9", []byte(legit)); d.Allowed || d.Reason != ReasonUnavailable {
		t.Fatalf("unavailable hotspot not blocked: %+v", d)
	}
	if len(logged) != 3 {
		t.Fatalf("logged %d decisions, want 3", len(logged))
	}

	flag := NewGuard(p, ModeFlag)
	if d := flag.CheckString("shop.php:42", attack); !d.Allowed || !d.Flagged || d.Reason != ReasonOutsideLanguage {
		t.Fatalf("flag mode: %+v", d)
	}
	logMode := NewGuard(p, ModeLog)
	if d := logMode.Check("nowhere.php:1", []byte(legit)); !d.Allowed || !d.Flagged {
		t.Fatalf("log mode: %+v", d)
	}
}

func TestGuardZeroAllocHotPath(t *testing.T) {
	p := testPack(t)
	g := NewGuard(p, ModeBlock)
	legit := "SELECT name FROM t WHERE id='7'"
	attack := "SELECT name FROM t WHERE id='' OR 1=1 --'"
	if n := testing.AllocsPerRun(200, func() {
		if !g.CheckString("shop.php:42", legit).Allowed {
			t.Fatal("legit blocked")
		}
		if g.CheckString("shop.php:42", attack).Allowed {
			t.Fatal("attack allowed")
		}
	}); n != 0 {
		t.Fatalf("guard check allocates %v per run, want 0", n)
	}
}

func TestMiddleware(t *testing.T) {
	p := testPack(t)
	var served int
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { served++; w.WriteHeader(200) })

	h := Middleware(MiddlewareConfig{Guard: NewGuard(p, ModeBlock)}, next)
	req := httptest.NewRequest("GET", "/orders", nil)
	req.Header.Set(HeaderHotspot, "shop.php:42")
	req.Header.Set(HeaderQuery, "SELECT name FROM t WHERE id='777'")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != 200 || served != 1 {
		t.Fatalf("legit request: code=%d served=%d", rw.Code, served)
	}

	req.Header.Set(HeaderQuery, "SELECT name FROM t WHERE id='' UNION SELECT pw FROM users --'")
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusForbidden || served != 1 {
		t.Fatalf("attack request: code=%d served=%d", rw.Code, served)
	}
	if !strings.Contains(rw.Body.String(), ReasonOutsideLanguage) {
		t.Errorf("block body %q", rw.Body.String())
	}

	// Flag mode forwards but marks the response.
	h = Middleware(MiddlewareConfig{Guard: NewGuard(p, ModeFlag)}, next)
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != 200 || served != 2 {
		t.Fatalf("flagged request: code=%d served=%d", rw.Code, served)
	}
	if got := rw.Header().Get("X-Sqlciv-Flagged"); got != ReasonOutsideLanguage {
		t.Errorf("X-Sqlciv-Flagged = %q", got)
	}
}

func TestOpenFile(t *testing.T) {
	p := testPack(t)
	path := filepath.Join(t.TempDir(), "app.pack")
	if err := os.WriteFile(path, p.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fp, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	m, ok := fp.Hotspot("shop.php:42")
	if !ok || !m.MatchString("SELECT name FROM t WHERE id='7'") {
		t.Fatal("mmap-opened pack does not match")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.pack")); err == nil {
		t.Error("Open on missing file succeeded")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"block", ModeBlock}, {"flag", ModeFlag}, {"log", ModeLog}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Errorf("Mode.String() = %q, want %q", m.String(), tc.in)
		}
	}
	if _, err := ParseMode("audit"); err == nil {
		t.Error("ParseMode accepted junk")
	}
}

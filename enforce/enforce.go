// Package enforce is the runtime enforcement surface of sqlciv: load a
// policy pack compiled by the static analyzer (`sqlcheck -emit-pack`,
// sqlcheckd's GET /v1/pack, or sqlciv.BuildPack) and check live SQL
// against each hotspot's statically-derived query language in
// O(len(query)) with zero allocations per check.
//
// The pack's language is a sound over-approximation of everything the
// application can legitimately emit, so legitimate traffic is never
// blocked; a query outside the language is one the application's source
// cannot produce — the signature of an injection.
//
// Three layers are provided: Matcher (raw membership), Guard (block /
// flag / log policy with fail-closed handling of unknown hotspots), and
// Middleware (net/http decoration for HTTP-fronted database proxies).
// cmd/sqlguard wraps the same Guard as a stdin filter and check server.
package enforce

import (
	"encoding/json"
	"fmt"
	"net/http"

	ienforce "sqlciv/internal/enforce"
)

// Pack is a loaded policy pack: one enforcement automaton per hotspot,
// keyed by "file:line". Immutable and safe for concurrent use.
type Pack = ienforce.Pack

// Matcher answers membership in one hotspot's query language with zero
// allocations per check.
type Matcher = ienforce.Matcher

// LoadError is the structured rejection of a malformed pack; loading
// always fails closed, never panics.
type LoadError = ienforce.LoadError

// Load validates serialized pack bytes. The data is aliased, not copied.
func Load(data []byte) (*Pack, error) { return ienforce.Load(data) }

// Open memory-maps (on Linux) or reads a pack file and validates it.
func Open(path string) (*Pack, error) { return ienforce.Open(path) }

// Mode selects what a Guard does with a query outside the derived
// language.
type Mode int

const (
	// ModeBlock rejects out-of-language queries (Decision.Allowed=false).
	ModeBlock Mode = iota
	// ModeFlag lets them pass but marks the decision — the canary
	// deployment mode.
	ModeFlag
	// ModeLog only reports; like ModeFlag but intended for sinks that
	// record every decision.
	ModeLog
)

func (m Mode) String() string {
	switch m {
	case ModeBlock:
		return "block"
	case ModeFlag:
		return "flag"
	case ModeLog:
		return "log"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses "block", "flag", or "log".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "block":
		return ModeBlock, nil
	case "flag":
		return ModeFlag, nil
	case "log":
		return ModeLog, nil
	}
	return 0, fmt.Errorf("enforce: unknown mode %q (want block, flag, or log)", s)
}

// Reasons a query is outside the enforced language.
const (
	// ReasonOutsideLanguage: the automaton rejected the query — the
	// application's source cannot emit it.
	ReasonOutsideLanguage = "outside-language"
	// ReasonUnknownHotspot: the pack has no entry for the hotspot key.
	// Fail closed: an unknown site has no derived language to hide in.
	ReasonUnknownHotspot = "unknown-hotspot"
	// ReasonUnavailable: the hotspot is in the pack but its automaton
	// could not be compiled (degraded analysis or approximation caps).
	ReasonUnavailable = "automaton-unavailable"
)

// Decision is the outcome of one query check.
type Decision struct {
	Hotspot string `json:"hotspot"`
	// InLanguage reports raw membership in the derived query language.
	InLanguage bool `json:"in_language"`
	// Allowed is the guard's action after applying its mode: in ModeBlock
	// it equals InLanguage, in ModeFlag/ModeLog it is always true.
	Allowed bool `json:"allowed"`
	// Flagged marks out-of-language queries that were let through by a
	// non-blocking mode.
	Flagged bool `json:"flagged,omitempty"`
	// Reason is empty for in-language queries, else one of the Reason*
	// constants.
	Reason string `json:"reason,omitempty"`
}

// Guard applies a pack plus a mode to a stream of queries. The zero-cost
// path (in-language query, no Log sink) performs no allocations.
type Guard struct {
	pack *Pack
	mode Mode
	// Log, when set, receives every decision for an out-of-language
	// query (blocked or flagged). It runs synchronously on the checking
	// goroutine.
	Log func(Decision)
}

// NewGuard returns a Guard enforcing pack under mode.
func NewGuard(pack *Pack, mode Mode) *Guard { return &Guard{pack: pack, mode: mode} }

// Mode reports the guard's mode.
func (g *Guard) Mode() Mode { return g.mode }

// Pack returns the guarded pack.
func (g *Guard) Pack() *Pack { return g.pack }

// CheckString decides one query against one hotspot key.
func (g *Guard) CheckString(hotspot, query string) Decision {
	m, known := g.pack.Hotspot(hotspot)
	d := Decision{Hotspot: hotspot}
	switch {
	case !known:
		d.Reason = ReasonUnknownHotspot
	case !m.Available():
		d.Reason = ReasonUnavailable
	case m.MatchString(query):
		d.InLanguage = true
		d.Allowed = true
		return d
	default:
		d.Reason = ReasonOutsideLanguage
	}
	// Out of language: block or wave through flagged.
	if g.mode != ModeBlock {
		d.Allowed = true
		d.Flagged = true
	}
	if g.Log != nil {
		g.Log(d)
	}
	return d
}

// Check is CheckString on raw query bytes.
func (g *Guard) Check(hotspot string, query []byte) Decision {
	m, known := g.pack.Hotspot(hotspot)
	d := Decision{Hotspot: hotspot}
	switch {
	case !known:
		d.Reason = ReasonUnknownHotspot
	case !m.Available():
		d.Reason = ReasonUnavailable
	case m.Match(query):
		d.InLanguage = true
		d.Allowed = true
		return d
	default:
		d.Reason = ReasonOutsideLanguage
	}
	if g.mode != ModeBlock {
		d.Allowed = true
		d.Flagged = true
	}
	if g.Log != nil {
		g.Log(d)
	}
	return d
}

// Default header names the middleware reads when no extractors are
// configured: the hotspot key and the SQL text of the statement the
// request wants to run.
const (
	HeaderHotspot = "X-Sqlciv-Hotspot"
	HeaderQuery   = "X-Sqlciv-Query"
)

// MiddlewareConfig wires a Guard into an http.Handler chain — the shape
// of an HTTP-fronted database proxy, where each request names the query
// it wants executed.
type MiddlewareConfig struct {
	Guard *Guard
	// Hotspot extracts the hotspot key from the request; defaults to the
	// X-Sqlciv-Hotspot header.
	Hotspot func(*http.Request) string
	// Query extracts the SQL text; defaults to the X-Sqlciv-Query header,
	// falling back to the "query" form value.
	Query func(*http.Request) string
	// OnBlock handles blocked requests; defaults to a 403 with the
	// Decision as JSON.
	OnBlock func(http.ResponseWriter, *http.Request, Decision)
}

// Middleware returns next decorated with query enforcement: the guard
// checks the request's (hotspot, query) pair and either forwards the
// request (in-language, or out-of-language under flag/log mode — flagged
// requests gain an X-Sqlciv-Flagged header with the reason) or invokes
// OnBlock.
func Middleware(cfg MiddlewareConfig, next http.Handler) http.Handler {
	hotspot := cfg.Hotspot
	if hotspot == nil {
		hotspot = func(r *http.Request) string { return r.Header.Get(HeaderHotspot) }
	}
	query := cfg.Query
	if query == nil {
		query = func(r *http.Request) string {
			if q := r.Header.Get(HeaderQuery); q != "" {
				return q
			}
			return r.FormValue("query")
		}
	}
	onBlock := cfg.OnBlock
	if onBlock == nil {
		onBlock = func(w http.ResponseWriter, r *http.Request, d Decision) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusForbidden)
			json.NewEncoder(w).Encode(d)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := cfg.Guard.CheckString(hotspot(r), query(r))
		if !d.Allowed {
			onBlock(w, r, d)
			return
		}
		if d.Flagged {
			w.Header().Set("X-Sqlciv-Flagged", d.Reason)
		}
		next.ServeHTTP(w, r)
	})
}

package sqlciv

import (
	"reflect"
	"regexp"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
)

// summaryTimes masks the two wall-clock figures in Summary output; every
// other byte of the summary must be identical across configurations.
var summaryTimes = regexp.MustCompile(`string-analysis=\S+ check=\S+`)

// TestParallelDeterminism checks that concurrent page analysis plus
// concurrent, memoized hotspot checking is observationally identical to the
// sequential configuration on every corpus app: same findings in the same
// order (all fields, witnesses included), same grammar sizes, same summary.
// This is the guarantee that lets sqlcheck default to -parallel: scheduling
// and cache-fill order cannot leak into the analysis result.
func TestParallelDeterminism(t *testing.T) {
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			seq, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries,
				core.Options{Parallel: 8, ParallelHotspots: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Findings) == 0 && len(seq.Findings) != 0 {
				t.Fatalf("parallel run lost all findings")
			}
			if !reflect.DeepEqual(seq.Findings, par.Findings) {
				t.Errorf("findings differ:\nsequential: %v\nparallel:   %v", seq.Findings, par.Findings)
			}
			if seq.Files != par.Files || seq.Lines != par.Lines ||
				seq.NumNTs != par.NumNTs || seq.NumProds != par.NumProds {
				t.Errorf("aggregate sizes differ: files %d/%d lines %d/%d |V| %d/%d |R| %d/%d",
					seq.Files, par.Files, seq.Lines, par.Lines,
					seq.NumNTs, par.NumNTs, seq.NumProds, par.NumProds)
			}
			ss := summaryTimes.ReplaceAllString(seq.Summary(), "t")
			ps := summaryTimes.ReplaceAllString(par.Summary(), "t")
			if ss != ps {
				t.Errorf("summaries differ:\nsequential:\n%s\nparallel:\n%s", ss, ps)
			}
		})
	}
}

package sqlciv

import (
	"reflect"
	"testing"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/grammar"
	"sqlciv/internal/xss"
)

// TestArenaPreservesFindingsOnCorpus is the arena substrate's differential
// oracle: whole-app analysis with arena allocation forced off (the retained
// per-production-slice layout) must produce reports DeepEqual to the default
// slab-backed run, for every Table 1 subject. The two representations hold
// identical productions in identical order, so any divergence — a witness, a
// verdict, even report order — is an arena bug.
func TestArenaPreservesFindingsOnCorpus(t *testing.T) {
	defer func(prev bool) { grammar.ArenaAllocation = prev }(grammar.ArenaAllocation)
	run := func(arena bool) map[string]*core.AppResult {
		grammar.ArenaAllocation = arena
		out := map[string]*core.AppResult{}
		for _, app := range corpus.Apps() {
			res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
			if err != nil {
				t.Fatalf("%s (arena=%v): %v", app.Name, arena, err)
			}
			out[app.Name] = res
		}
		return out
	}
	on := run(true)
	off := run(false)
	for name, want := range off {
		got := on[name]
		if !reflect.DeepEqual(got.Findings, want.Findings) {
			t.Errorf("%s: findings diverged\narena:  %+v\nslices: %+v",
				name, got.Findings, want.Findings)
		}
	}
	if len(on) == 0 {
		t.Fatal("corpus produced no subjects")
	}
}

// TestArenaPreservesXSSFindings runs the XSS auditor both ways over the
// corpus apps that emit page output.
func TestArenaPreservesXSSFindings(t *testing.T) {
	defer func(prev bool) { grammar.ArenaAllocation = prev }(grammar.ArenaAllocation)
	for _, app := range corpus.Apps() {
		resolver := analysis.NewMapResolver(app.Sources)
		grammar.ArenaAllocation = true
		on, err := xss.Audit(resolver, app.Entries, analysis.Options{})
		if err != nil {
			t.Fatalf("%s arena: %v", app.Name, err)
		}
		grammar.ArenaAllocation = false
		off, err := xss.Audit(resolver, app.Entries, analysis.Options{})
		if err != nil {
			t.Fatalf("%s slices: %v", app.Name, err)
		}
		if !reflect.DeepEqual(on, off) {
			t.Errorf("%s: XSS findings diverged\narena:  %+v\nslices: %+v", app.Name, on, off)
		}
	}
}

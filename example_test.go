package sqlciv_test

import (
	"fmt"

	"sqlciv"
)

// ExampleAnalyzeApp analyzes a page with the paper's Figure 2 bug (an
// unanchored regex guard) and its corrected version.
func ExampleAnalyzeApp() {
	vulnerable := `<?php
$userid = $_GET['userid'];
if (!eregi('[0-9]+', $userid)) { exit; }   // missing ^...$ anchors
mysql_query("SELECT * FROM users WHERE userid='$userid'");
`
	res, err := sqlciv.AnalyzeApp(
		sqlciv.NewMapResolver(map[string]string{"page.php": vulnerable}),
		[]string{"page.php"}, sqlciv.Options{})
	if err != nil {
		panic(err)
	}
	f := res.Findings[0]
	fmt.Printf("verified=%v findings=%d\n", res.Verified(), len(res.Findings))
	fmt.Printf("at %s:%d from %s via %s\n", f.File, f.Line, f.Source, f.Check)

	fixed := `<?php
$userid = $_GET['userid'];
if (!eregi('^[0-9]+$', $userid)) { exit; }
mysql_query("SELECT * FROM users WHERE userid='$userid'");
`
	res2, err := sqlciv.AnalyzeApp(
		sqlciv.NewMapResolver(map[string]string{"page.php": fixed}),
		[]string{"page.php"}, sqlciv.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after anchoring: verified=%v\n", res2.Verified())

	// Output:
	// verified=false findings=1
	// at page.php:4 from _GET[userid] via odd-unescaped-quotes
	// after anchoring: verified=true
}

// ExampleAnalyzeApp_sanitizer shows context-sensitive sanitizer verdicts:
// the same escaping function is safe inside quotes and exploitable outside
// them.
func ExampleAnalyzeApp_sanitizer() {
	check := func(src string) bool {
		res, err := sqlciv.AnalyzeApp(
			sqlciv.NewMapResolver(map[string]string{"p.php": src}),
			[]string{"p.php"}, sqlciv.Options{})
		if err != nil {
			panic(err)
		}
		return res.Verified()
	}
	quoted := `<?php
$n = addslashes($_GET['n']);
mysql_query("SELECT * FROM u WHERE name='$n'");
`
	numeric := `<?php
$id = addslashes($_GET['id']);
mysql_query("SELECT * FROM u WHERE id=" . $id);
`
	fmt.Printf("addslashes in quotes: verified=%v\n", check(quoted))
	fmt.Printf("addslashes unquoted:  verified=%v\n", check(numeric))

	// Output:
	// addslashes in quotes: verified=true
	// addslashes unquoted:  verified=false
}

// Empirical soundness tests (Theorem 3.4): pages the analyzer VERIFIES must
// never render an unconfined query, for any input. We mirror each verified
// page's concrete PHP semantics in Go (render), drive it with random and
// adversarial inputs, and ask the Definition 2.2 oracle whether the
// user-controlled substring stayed syntactically confined. A single
// counterexample would disprove the verification.
package sqlciv

import (
	"strings"
	"testing"
	"testing/quick"

	"sqlciv/internal/analysis"
	"sqlciv/internal/core"
	"sqlciv/internal/sqlgram"
)

// phpAddslashes mirrors PHP addslashes.
func phpAddslashes(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(s[i])
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// digitsOnly mirrors an anchored ^[0-9]+$ guard: returns false when the
// page would exit.
func digitsOnly(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

type verifiedPage struct {
	name string
	src  string
	// render returns the concrete query for an input, or "" when the page
	// exits before querying. markStart/markEnd denote the user substring.
	render func(input string) (q string, start, end int)
}

var verifiedPages = []verifiedPage{
	{
		name: "addslashes-quoted",
		src: `<?php
$v = addslashes($_GET['v']);
mysql_query("SELECT * FROM t WHERE a='$v'");
`,
		render: func(in string) (string, int, int) {
			esc := phpAddslashes(in)
			prefix := "SELECT * FROM t WHERE a='"
			return prefix + esc + "'", len(prefix), len(prefix) + len(esc)
		},
	},
	{
		name: "anchored-numeric",
		src: `<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
mysql_query("SELECT * FROM t WHERE id=$id");
`,
		render: func(in string) (string, int, int) {
			if !digitsOnly(in) {
				return "", 0, 0
			}
			prefix := "SELECT * FROM t WHERE id="
			return prefix + in, len(prefix), len(prefix) + len(in)
		},
	},
	{
		name: "int-cast",
		src: `<?php
$id = (int)$_GET['id'];
mysql_query("SELECT * FROM t WHERE id=$id");
`,
		render: func(in string) (string, int, int) {
			// PHP (int) cast: leading integer value or 0.
			i := 0
			neg := false
			if i < len(in) && (in[i] == '-' || in[i] == '+') {
				neg = in[i] == '-'
				i++
			}
			j := i
			for j < len(in) && in[j] >= '0' && in[j] <= '9' {
				j++
			}
			val := in[i:j]
			if val == "" {
				val = "0"
				neg = false
			}
			val = strings.TrimLeft(val, "0")
			if val == "" {
				val = "0"
				neg = false
			}
			if neg {
				val = "-" + val
			}
			prefix := "SELECT * FROM t WHERE id="
			return prefix + val, len(prefix), len(prefix) + len(val)
		},
	},
}

// adversarial inputs every page gets, beyond the random ones.
var adversarial = []string{
	"", "1'; DROP TABLE t; --", `\' OR 1=1 --`, "0 OR 1=1",
	"'", `\`, `\'`, "''", "1 UNION SELECT password FROM users",
	"-1", "%27", "x\x00y", "1)); --",
}

func TestVerifiedPagesAreSound(t *testing.T) {
	sql := sqlgram.Get()
	for _, page := range verifiedPages {
		res, err := core.AnalyzeApp(
			analysis.NewMapResolver(map[string]string{"p.php": page.src}),
			[]string{"p.php"}, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", page.name, err)
		}
		if !res.Verified() {
			t.Fatalf("%s: expected VERIFIED, got %v", page.name, res.Findings)
		}
		probe := func(in string) bool {
			q, start, end := page.render(in)
			if q == "" {
				return true // page exited: no query
			}
			return sql.Confined(q, start, end)
		}
		for _, in := range adversarial {
			if !probe(in) {
				q, s, e := page.render(in)
				t.Fatalf("%s: UNSOUND — input %q renders %q with unconfined [%d:%d]",
					page.name, in, q, s, e)
			}
		}
		f := func(raw []byte) bool {
			if len(raw) > 12 {
				raw = raw[:12]
			}
			return probe(string(raw))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: soundness property failed: %v", page.name, err)
		}
	}
}

// TestVulnerablePagesAreReported is the completeness side: for pages where
// a concrete attack input demonstrably breaks confinement, the analyzer
// must report (no false negatives on the paper's patterns).
func TestVulnerablePagesAreReported(t *testing.T) {
	sql := sqlgram.Get()
	cases := []struct {
		name   string
		src    string
		attack string
		render func(in string) (string, int, int)
	}{
		{
			name:   "raw-quoted",
			src:    `<?php mysql_query("SELECT * FROM t WHERE a='" . $_GET['v'] . "'");`,
			attack: "1'; DROP TABLE t; --",
			render: func(in string) (string, int, int) {
				prefix := "SELECT * FROM t WHERE a='"
				return prefix + in + "'", len(prefix), len(prefix) + len(in)
			},
		},
		{
			name: "escaped-numeric-context",
			src: `<?php
$id = addslashes($_GET['id']);
mysql_query("SELECT * FROM t WHERE id=" . $id);`,
			attack: "1 OR 1=1",
			render: func(in string) (string, int, int) {
				esc := phpAddslashes(in)
				prefix := "SELECT * FROM t WHERE id="
				return prefix + esc, len(prefix), len(prefix) + len(esc)
			},
		},
	}
	for _, tc := range cases {
		// The attack truly breaks confinement…
		q, s, e := tc.render(tc.attack)
		if !sql.ParsesQuery(q) {
			t.Fatalf("%s: attack query %q does not even parse", tc.name, q)
		}
		if sql.Confined(q, s, e) {
			t.Fatalf("%s: chosen attack %q is actually confined", tc.name, tc.attack)
		}
		// …so the analyzer must report.
		res, err := core.AnalyzeApp(
			analysis.NewMapResolver(map[string]string{"p.php": tc.src}),
			[]string{"p.php"}, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verified() {
			t.Fatalf("%s: demonstrably vulnerable page verified (unsound)", tc.name)
		}
	}
}

// TestMagicQuotesSoundness: a page the analyzer verifies only under
// magic_quotes_gpc must be concretely safe when inputs are pre-escaped.
func TestMagicQuotesSoundness(t *testing.T) {
	sql := sqlgram.Get()
	src := `<?php
mysql_query("SELECT * FROM t WHERE a='" . $_GET['v'] . "'");
`
	opts := core.Options{}
	opts.Analysis.MagicQuotes = true
	res, err := core.AnalyzeApp(
		analysis.NewMapResolver(map[string]string{"p.php": src}),
		[]string{"p.php"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() {
		t.Fatalf("quoted context under magic quotes should verify: %v", res.Findings)
	}
	render := func(in string) (string, int, int) {
		esc := phpAddslashes(in)
		prefix := "SELECT * FROM t WHERE a='"
		return prefix + esc + "'", len(prefix), len(prefix) + len(esc)
	}
	for _, in := range adversarial {
		q, s, e := render(in)
		if !sql.Confined(q, s, e) {
			t.Fatalf("UNSOUND under magic quotes: input %q renders %q", in, q)
		}
	}
	f := func(raw []byte) bool {
		if len(raw) > 10 {
			raw = raw[:10]
		}
		q, s, e := render(string(raw))
		return sql.Confined(q, s, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("magic-quotes soundness property failed: %v", err)
	}
}

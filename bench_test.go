// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5) plus the ablations DESIGN.md calls out. Each Table 1
// benchmark runs the full two-phase analysis of one synthetic subject and
// reports the row's columns as custom metrics (grammar |V| and |R|, error
// counts); the figure benchmarks exercise the specific mechanism each
// figure illustrates. EXPERIMENTS.md records paper-versus-measured values.
package sqlciv

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sqlciv/internal/analysis"
	"sqlciv/internal/automata"
	"sqlciv/internal/core"
	"sqlciv/internal/corpus"
	"sqlciv/internal/fst"
	"sqlciv/internal/grammar"
	"sqlciv/internal/policy"
	"sqlciv/internal/rx"
	"sqlciv/internal/taintcheck"
	"sqlciv/internal/vcache"
	"sqlciv/internal/xss"
)

// ---- Table 1 ---------------------------------------------------------------

func benchApp(b *testing.B, app *corpus.App) {
	b.Helper()
	benchAppOpts(b, app, core.Options{})
}

func benchAppOpts(b *testing.B, app *corpus.App, opts core.Options) {
	b.Helper()
	memoHits0, memoMisses0 := grammar.RelMemoStats()
	var last *core.AppResult
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	direct, falsePos, indirect := 0, 0, 0
	for _, f := range last.Findings {
		switch {
		case !f.Direct():
			indirect++
		case app.FalseFiles[f.File]:
			falsePos++
		default:
			direct++
		}
	}
	if direct != app.Expect.DirectReal || falsePos != app.Expect.DirectFalse || indirect != app.Expect.Indirect {
		b.Fatalf("census drift: got %d/%d/%d want %d/%d/%d",
			direct, falsePos, indirect,
			app.Expect.DirectReal, app.Expect.DirectFalse, app.Expect.Indirect)
	}
	b.ReportMetric(float64(last.NumNTs), "grammar-V")
	b.ReportMetric(float64(last.NumProds), "grammar-R")
	b.ReportMetric(float64(direct), "direct-real")
	b.ReportMetric(float64(falsePos), "direct-false")
	b.ReportMetric(float64(indirect), "indirect")
	b.ReportMetric(float64(last.Lines), "loc")
	b.ReportMetric(last.StringAnalysisTime.Seconds()*1000, "stringan-ms")
	b.ReportMetric(last.CheckTime.Seconds()*1000, "check-ms")
	if last.CompactProds > 0 {
		b.ReportMetric(float64(last.CompactProds), "grammar-R-compacted")
	}
	// Hit percentage over all hotspot checks: in-memory memo hits plus
	// persistent disk hits. A disk hit short-circuits before the memoizer,
	// and every disk miss falls through to one memo lookup, so the check
	// total is disk hits + memo lookups. Cold runs sit at 0; the _Warm
	// variants should approach 100.
	hits := last.VerdictCacheHits + last.DiskCacheHits
	if total := last.VerdictCacheMisses + hits; total > 0 {
		b.ReportMetric(100*float64(hits)/float64(total), "verdict-cache-hit-pct")
	}
	// Automaton census: cumulative process-wide totals for every DFA that
	// entered the class-indexed representation (Compress or Decompress).
	// The absolutes let bench-diff ratchet compression regressions — a
	// check DFA that suddenly needs more byte classes shows up as a jump in
	// dfa-classes and slab-B long before it costs wall-clock time.
	census := automata.CensusSnapshot()
	b.ReportMetric(float64(census.DFAs), "dfas")
	b.ReportMetric(float64(census.States), "dfa-states")
	b.ReportMetric(float64(census.Classes), "dfa-classes")
	b.ReportMetric(float64(census.SlabBytes), "slab-B")
	// Class-string memo effectiveness inside the relation fixpoints:
	// terminal runs collapsing to an already-composed class sequence.
	memoHits, memoMisses := grammar.RelMemoStats()
	dh, dm := memoHits-memoHits0, memoMisses-memoMisses0
	if dh+dm > 0 {
		b.ReportMetric(100*float64(dh)/float64(dh+dm), "class-memo-hit-pct")
	}
	// Grammar arena census for the last run: retained page-grammar slab
	// bytes, and the hit rate against the process-global terminal-run
	// intern pool. Ratcheted by bench-diff alongside B/op and allocs/op —
	// a slab-bytes jump or a hit-rate collapse is an allocator regression
	// even when wall-clock hides it.
	b.ReportMetric(float64(last.GrammarSlabBytes), "grammar-slab-B")
	if t := last.InternHits + last.InternMisses; t > 0 {
		b.ReportMetric(100*float64(last.InternHits)/float64(t), "intern-hit-pct")
	}
}

// benchAppWarm measures the steady state of the persistent verdict cache:
// one untimed cold run fills a fresh store, then every timed iteration
// re-analyzes the same app against the flushed cache.
func benchAppWarm(b *testing.B, app *corpus.App) {
	b.Helper()
	store, err := vcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{VerdictCache: store}
	if _, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, opts); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchAppOpts(b, app, opts)
}

// ---- Incremental re-analysis (BENCH_incremental.json) ----------------------

// benchIncrementalCold is the from-scratch baseline every incremental edit
// is measured against: a fresh session per iteration, so every page fills
// its memo for the first time.
func benchIncrementalCold(b *testing.B, app *corpus.App) {
	b.Helper()
	var last *core.AppResult
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries,
			core.Options{Session: core.NewSession(core.SessionConfig{})})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Incr.PagesRecomputed), "pages-recomputed")
	b.ReportMetric(float64(last.Lines), "loc")
}

// benchIncrementalEdit is the headline single-file-edit latency: one untimed
// cold run warms a session, then every timed iteration toggles target (one
// entry page) between its original and an edited form and re-analyzes. Each
// iteration therefore dirties exactly one page — the steady state of an IDE
// or watch-mode client — and the reuse percentages are reported alongside
// the wall time, mirroring the verdict-cache hit metric of the _Warm runs.
//
// An empty target edits the app's first entry. Tiger overrides it to
// static0.php — the same typical content page the CI smoke gate
// (TestIncrementalEditRecheckBudget) edits — because its first entry is the
// app's single most expensive tiger_encode page, whose unavoidable
// recompute cost would measure that page's grammar, not the incremental
// machinery.
func benchIncrementalEdit(b *testing.B, app *corpus.App, target string) {
	b.Helper()
	ses := core.NewSession(core.SessionConfig{})
	sources := make(map[string]string, len(app.Sources))
	for k, v := range app.Sources {
		sources[k] = v
	}
	if _, err := core.AnalyzeApp(analysis.NewMapResolver(sources), app.Entries,
		core.Options{Session: ses}); err != nil {
		b.Fatal(err)
	}
	if target == "" {
		target = app.Entries[0]
	}
	orig, ok := sources[target]
	if !ok {
		b.Fatalf("edit target %q is not a source file", target)
	}
	var last *core.AppResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			sources[target] = orig + "<!-- bench edit -->\n"
		} else {
			sources[target] = orig
		}
		res, err := core.AnalyzeApp(analysis.NewMapResolver(sources), app.Entries,
			core.Options{Session: ses})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	in := last.Incr
	if in == nil || in.PagesRecomputed != 1 {
		b.Fatalf("edit iteration did not recompute exactly one page: %+v", in)
	}
	b.ReportMetric(in.PageReplayPct(), "incr-page-replay-pct")
	b.ReportMetric(in.HotspotReplayPct(), "incr-hotspot-replay-pct")
	b.ReportMetric(in.FileReusePct(), "incr-file-reuse-pct")
	b.ReportMetric(float64(in.FilesParsed), "files-parsed")
}

func BenchmarkIncrementalCold_E107(b *testing.B)   { benchIncrementalCold(b, corpus.E107()) }
func BenchmarkIncrementalCold_EVE(b *testing.B)    { benchIncrementalCold(b, corpus.EVE()) }
func BenchmarkIncrementalCold_Tiger(b *testing.B)  { benchIncrementalCold(b, corpus.Tiger()) }
func BenchmarkIncrementalCold_Utopia(b *testing.B) { benchIncrementalCold(b, corpus.Utopia()) }
func BenchmarkIncrementalCold_Warp(b *testing.B)   { benchIncrementalCold(b, corpus.Warp()) }

func BenchmarkIncrementalEdit_E107(b *testing.B)   { benchIncrementalEdit(b, corpus.E107(), "") }
func BenchmarkIncrementalEdit_EVE(b *testing.B)    { benchIncrementalEdit(b, corpus.EVE(), "") }
func BenchmarkIncrementalEdit_Tiger(b *testing.B)  { benchIncrementalEdit(b, corpus.Tiger(), "static0.php") }
func BenchmarkIncrementalEdit_Utopia(b *testing.B) { benchIncrementalEdit(b, corpus.Utopia(), "") }
func BenchmarkIncrementalEdit_Warp(b *testing.B)   { benchIncrementalEdit(b, corpus.Warp(), "") }

// parallelOpts runs pages and hotspot checks over one worker per CPU.
func parallelOpts() core.Options {
	return core.Options{Parallel: runtime.NumCPU(), ParallelHotspots: runtime.NumCPU()}
}

func BenchmarkTable1_E107(b *testing.B)   { benchApp(b, corpus.E107()) }
func BenchmarkTable1_EVE(b *testing.B)    { benchApp(b, corpus.EVE()) }
func BenchmarkTable1_Tiger(b *testing.B)  { benchApp(b, corpus.Tiger()) }
func BenchmarkTable1_Utopia(b *testing.B) { benchApp(b, corpus.Utopia()) }
func BenchmarkTable1_Warp(b *testing.B)   { benchApp(b, corpus.Warp()) }

// budgetedOpts enables every budget knob at values no corpus app
// approaches, measuring the metering overhead on the untripped path.
func budgetedOpts() core.Options {
	opts := core.Options{}
	opts.Budget.Timeout = 10 * time.Minute
	opts.Budget.HotspotTimeout = time.Minute
	opts.Budget.MaxSteps = 1 << 40
	opts.Budget.MaxMemBytes = 1 << 40
	return opts
}

func BenchmarkTable1_E107_Budgeted(b *testing.B)   { benchAppOpts(b, corpus.E107(), budgetedOpts()) }
func BenchmarkTable1_EVE_Budgeted(b *testing.B)    { benchAppOpts(b, corpus.EVE(), budgetedOpts()) }
func BenchmarkTable1_Tiger_Budgeted(b *testing.B)  { benchAppOpts(b, corpus.Tiger(), budgetedOpts()) }
func BenchmarkTable1_Utopia_Budgeted(b *testing.B) { benchAppOpts(b, corpus.Utopia(), budgetedOpts()) }
func BenchmarkTable1_Warp_Budgeted(b *testing.B)   { benchAppOpts(b, corpus.Warp(), budgetedOpts()) }

// The _Warm variants report how much of a repeat run the persistent verdict
// cache absorbs (check-ms should collapse, verdict-cache-hit-pct > 90).
func BenchmarkTable1_E107_Warm(b *testing.B)   { benchAppWarm(b, corpus.E107()) }
func BenchmarkTable1_EVE_Warm(b *testing.B)    { benchAppWarm(b, corpus.EVE()) }
func BenchmarkTable1_Tiger_Warm(b *testing.B)  { benchAppWarm(b, corpus.Tiger()) }
func BenchmarkTable1_Utopia_Warm(b *testing.B) { benchAppWarm(b, corpus.Utopia()) }
func BenchmarkTable1_Warp_Warm(b *testing.B)   { benchAppWarm(b, corpus.Warp()) }

func BenchmarkTable1_E107_Parallel(b *testing.B)   { benchAppOpts(b, corpus.E107(), parallelOpts()) }
func BenchmarkTable1_EVE_Parallel(b *testing.B)    { benchAppOpts(b, corpus.EVE(), parallelOpts()) }
func BenchmarkTable1_Tiger_Parallel(b *testing.B)  { benchAppOpts(b, corpus.Tiger(), parallelOpts()) }
func BenchmarkTable1_Utopia_Parallel(b *testing.B) { benchAppOpts(b, corpus.Utopia(), parallelOpts()) }
func BenchmarkTable1_Warp_Parallel(b *testing.B)   { benchAppOpts(b, corpus.Warp(), parallelOpts()) }

// ---- Figure 2 / Figure 4: the running example -------------------------------

const fig2Page = `<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($userid == '') { exit; }
if (!eregi('[0-9]+', $userid)) { exit; }
$getuser = mysql_query("SELECT * FROM unp_user WHERE userid='$userid'");
`

// BenchmarkFig2_UnanchoredRegexVuln runs the full pipeline on the paper's
// Figure 2 and asserts the vulnerability is found each iteration.
func BenchmarkFig2_UnanchoredRegexVuln(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeApp(
			analysis.NewMapResolver(map[string]string{"members.php": fig2Page}),
			[]string{"members.php"}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified() || !res.Findings[0].Direct() {
			b.Fatal("Figure 2 vulnerability not reported")
		}
	}
}

// BenchmarkFig4_QueryGrammar measures phase 1 alone — producing the Figure 4
// annotated query grammar — and reports its size.
func BenchmarkFig4_QueryGrammar(b *testing.B) {
	var v, r int
	for i := 0; i < b.N; i++ {
		res, err := analysis.Analyze(
			analysis.NewMapResolver(map[string]string{"members.php": fig2Page}),
			"members.php", analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Hotspots) != 1 {
			b.Fatal("hotspot missing")
		}
		sub, _ := res.G.Extract(res.Hotspots[0].Root)
		v, r = sub.NumNTs(), sub.NumProds()
	}
	b.ReportMetric(float64(v), "grammar-V")
	b.ReportMetric(float64(r), "grammar-R")
}

// ---- Figure 5: dataflow-reflecting grammar ----------------------------------

func BenchmarkFig5_DataflowGrammar(b *testing.B) {
	src := `<?php
$x = $_GET['u'];
if ($a) { $x = $x . "s"; } else { $x = $x . "s"; }
$z = $x;
mysql_query($z);
`
	for i := 0; i < b.N; i++ {
		res, err := analysis.Analyze(
			analysis.NewMapResolver(map[string]string{"f5.php": src}), "f5.php", analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.G.DerivesString(res.Hotspots[0].Root, "us") {
			b.Fatal("dataflow grammar wrong")
		}
	}
}

// ---- Figure 6: the str_replace("''","'") transducer ---------------------------

func BenchmarkFig6_StrReplaceFST(b *testing.B) {
	inputs := []string{"it''s", "''''", "plain", "a''b''c''d"}
	for i := 0; i < b.N; i++ {
		t := fst.SQLQuoteUnescape()
		for _, in := range inputs {
			if _, ok := t.Apply(in); !ok {
				b.Fatal("transducer rejected input")
			}
		}
	}
}

// ---- Figure 7: taint-propagating CFG ∩ FSA -----------------------------------

func fig7Grammar() (*grammar.Grammar, grammar.Sym) {
	g := grammar.New()
	q := g.NewNT("query")
	u := g.NewNT("userid")
	g.AddLabel(u, grammar.Direct)
	sig := g.NewNT("sigma")
	g.Add(sig)
	for c := 0; c < 256; c++ {
		g.Add(sig, grammar.T(byte(c)), sig)
	}
	g.Add(u, sig)
	rhs := grammar.TermString("SELECT * FROM t WHERE id='")
	rhs = append(rhs, u, grammar.T('\''))
	g.Add(q, rhs...)
	g.SetStart(q)
	return g, u
}

func BenchmarkFig7_IntersectTaint(b *testing.B) {
	re, err := rx.Parse("[0-9]+", true)
	if err != nil {
		b.Fatal(err)
	}
	dfa := re.MatchDFA()
	for i := 0; i < b.N; i++ {
		g, u := fig7Grammar()
		root, ok := grammar.IntersectInto(g, u, dfa)
		if !ok {
			b.Fatal("intersection empty")
		}
		if !g.HasLabel(root, grammar.Direct) {
			b.Fatal("taint lost (Theorem 3.1)")
		}
	}
}

// ---- Figure 8: explode ---------------------------------------------------------

func BenchmarkFig8_Explode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := grammar.New()
		s := g.NewNT("S")
		g.AddString(s, "a,b,c")
		g.AddString(s, "x,,y")
		root, ok := fst.ImageInto(g, s, fst.Substr())
		if !ok {
			b.Fatal("explode image empty")
		}
		for _, piece := range []string{"a", "b", "c", "x", "y", ""} {
			if !g.DerivesString(root, piece) {
				b.Fatalf("piece %q missing", piece)
			}
		}
	}
}

// ---- Figure 9: the type-conversion false positive ------------------------------

func BenchmarkFig9_FalsePositive(b *testing.B) {
	app := corpus.Utopia()
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources),
			[]string{"shownews.php"}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified() {
			b.Fatal("the Figure 9 pattern should (falsely) report")
		}
	}
}

// ---- Figure 10: the indirect report ---------------------------------------------

func BenchmarkFig10_IndirectReport(b *testing.B) {
	app := corpus.Utopia()
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources),
			[]string{"postnews.php"}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.IndirectFindings() != 1 {
			b.Fatalf("want exactly one indirect finding, got %d", res.IndirectFindings())
		}
	}
}

// ---- Ablation A: versus the binary taint baseline --------------------------------

// BenchmarkAblation_TaintBaseline runs the taint baseline over Utopia and
// reports how its verdicts differ from the grammar-based tool: the baseline
// flags the guarded-but-safe pages (extra false positives) and cannot
// separate the Figure 9 pattern either.
func BenchmarkAblation_TaintBaseline(b *testing.B) {
	app := corpus.Utopia()
	var baseline *taintcheck.Result
	for i := 0; i < b.N; i++ {
		res, err := taintcheck.Check(analysis.NewMapResolver(app.Sources), app.Entries)
		if err != nil {
			b.Fatal(err)
		}
		baseline = res
	}
	b.ReportMetric(float64(len(baseline.Findings)), "baseline-findings")
}

// ---- Ablation B: regex-guard refinement off ---------------------------------------

func BenchmarkAblation_NoRegexRefinement(b *testing.B) {
	app := corpus.Warp() // fully safe: every extra finding is a false positive
	var with, without int
	for i := 0; i < b.N; i++ {
		resOn, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{}
		opts.Analysis.DisableGuardRefinement = true
		resOff, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries, opts)
		if err != nil {
			b.Fatal(err)
		}
		with, without = len(resOn.Findings), len(resOff.Findings)
	}
	if with != 0 {
		b.Fatal("refined run should verify Warp")
	}
	if without == 0 {
		b.Fatal("unrefined run should produce false positives")
	}
	b.ReportMetric(float64(with), "fp-with-refinement")
	b.ReportMetric(float64(without), "fp-without-refinement")
}

// ---- Ablation C: replacement-chain blowup (§5.3) -----------------------------------

// BenchmarkAblation_ReplaceChainBlowup measures grammar growth as
// replacement operations chain, on a bounded base language so every depth
// terminates: the per-stage multiplication the paper describes for Tiger.
func BenchmarkAblation_ReplaceChainBlowup(b *testing.B) {
	for depth := 0; depth <= 3; depth++ {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var prods int
			for i := 0; i < b.N; i++ {
				g := grammar.New()
				s := g.NewNT("S")
				// Bounded base: all strings over a tiny alphabet, length ≤ 6.
				cur := s
				for l := 0; l < 6; l++ {
					next := g.NewNT("")
					g.Add(next)
					for _, c := range []byte{'a', 'b', '[', ']', ':', ')'} {
						g.Add(next, grammar.T(c), cur)
					}
					g.Add(cur)
					cur = next
				}
				root := cur
				patterns := []string{"[b]", ":)", "[i]"}
				ok := true
				for d := 0; d < depth; d++ {
					root, ok = fst.ImageInto(g, root, fst.ReplaceAllString(patterns[d%len(patterns)], []byte("<x>")))
					if !ok {
						b.Fatal("image empty")
					}
				}
				sub, _ := g.Extract(root)
				prods = sub.NumProds()
			}
			b.ReportMetric(float64(prods), "grammar-R")
		})
	}
}

// ---- Scaling: check time vs grammar size (§5.3) --------------------------------------

// BenchmarkScaling_CheckVsGrammarSize verifies the paper's observation that
// policy checking stays cheap as the query grammar grows: it checks
// synthetic quoted-literal grammars of increasing size.
func BenchmarkScaling_CheckVsGrammarSize(b *testing.B) {
	for _, branches := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("alts=%d", branches), func(b *testing.B) {
			g := grammar.New()
			q := g.NewNT("query")
			x := g.NewNT("X")
			g.AddLabel(x, grammar.Direct)
			for i := 0; i < branches; i++ {
				g.AddString(x, fmt.Sprintf("value%04d", i))
			}
			rhs := grammar.TermString("SELECT * FROM t WHERE a='")
			rhs = append(rhs, x, grammar.T('\''))
			g.Add(q, rhs...)
			g.SetStart(q)
			checker := policy.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := checker.CheckHotspot(g, q)
				if !res.Verified {
					b.Fatal("literal values should verify")
				}
			}
			b.ReportMetric(float64(g.NumProds()), "grammar-R")
		})
	}
}

// ---- Extension: cross-site scripting (paper §7 future work) -------------------

// BenchmarkXSS_ReflectedAudit runs the XSS checker over a page with one
// reflected flow and one properly encoded flow.
func BenchmarkXSS_ReflectedAudit(b *testing.B) {
	// The encoded flow comes first: a raw flow earlier in the page would
	// poison the HTML context of everything after it (the checker models
	// contexts across echo statements).
	src := `<?php
echo '<h1>Search</h1>';
echo '<p>Safely: ' . htmlspecialchars($_GET['q2']) . '</p>';
echo '<p>You searched for ' . $_GET['q'] . '</p>';
`
	for i := 0; i < b.N; i++ {
		findings, err := xss.Audit(
			analysis.NewMapResolver(map[string]string{"s.php": src}),
			[]string{"s.php"}, analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 1 {
			b.Fatalf("want 1 finding, got %d", len(findings))
		}
	}
}

// ---- Ablation D: backward slicing to sinks (§5.3 / §7 future work) -----------

// BenchmarkAblation_BackwardSlicing measures the paper's proposed
// backward-dataflow improvement on a Tiger-shaped page: replacement chains
// on the display path, a simple query on the database path.
func BenchmarkAblation_BackwardSlicing(b *testing.B) {
	src := `<?php
$body = $_POST['body'];
$body = str_replace('[b]', '<b>', $body);
$body = str_replace(':)', '<img src="s.png">', $body);
echo $body;
mysql_query("SELECT * FROM t WHERE id=" . (int)$_GET['id']);
`
	for _, sliced := range []bool{false, true} {
		name := "eager"
		if sliced {
			name = "sliced"
		}
		b.Run(name, func(b *testing.B) {
			var prods, skipped int
			for i := 0; i < b.N; i++ {
				res, err := analysis.Analyze(
					analysis.NewMapResolver(map[string]string{"p.php": src}),
					"p.php", analysis.Options{SliceToSinks: sliced})
				if err != nil {
					b.Fatal(err)
				}
				prods, skipped = res.NumProds, res.SlicedOps
			}
			b.ReportMetric(float64(prods), "grammar-R")
			b.ReportMetric(float64(skipped), "ops-sliced")
		})
	}
}

// ---- Parallel page analysis (§5.3: "concurrent executions ... could
// improve the performance dramatically") --------------------------------------

func BenchmarkParallelAnalysis(b *testing.B) {
	app := corpus.E107()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.AnalyzeApp(analysis.NewMapResolver(app.Sources), app.Entries,
					core.Options{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Findings) != 5 {
					b.Fatalf("findings = %d", len(res.Findings))
				}
			}
		})
	}
}

// ---- Ablation E: relation-based cascade vs the paper's reference
// constructions -----------------------------------------------------------------

// BenchmarkAblation_CascadeImplementation compares the default policy
// cascade (one relation fixpoint per check DFA, context dataflow) against
// the paper's per-nonterminal marker/intersection constructions on the
// Tiger subject — the two are differentially tested for agreement, so this
// measures pure implementation cost.
func BenchmarkAblation_CascadeImplementation(b *testing.B) {
	app := corpus.Tiger()
	ar, err := analysis.Analyze(analysis.NewMapResolver(app.Sources), "forum.php", analysis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, marker := range []bool{false, true} {
		name := "relations"
		if marker {
			name = "marker-reference"
		}
		b.Run(name, func(b *testing.B) {
			checker := policy.New()
			checker.UseMarkerConstruction = marker
			for i := 0; i < b.N; i++ {
				for _, h := range ar.Hotspots {
					res := checker.CheckHotspot(ar.G, h.Root)
					if !res.Verified {
						b.Fatal("forum page should verify")
					}
				}
			}
		})
	}
}

// ---- Era configuration: magic_quotes_gpc ---------------------------------------

// BenchmarkMagicQuotes measures analysis under magic_quotes_gpc=On and
// asserts its two-sided verdict: quoted contexts verify, unquoted numeric
// contexts still report.
func BenchmarkMagicQuotes(b *testing.B) {
	quoted := `<?php mysql_query("SELECT * FROM t WHERE a='" . $_GET['v'] . "'");`
	numeric := `<?php mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`
	opts := core.Options{}
	opts.Analysis.MagicQuotes = true
	for i := 0; i < b.N; i++ {
		rq, err := core.AnalyzeApp(analysis.NewMapResolver(map[string]string{"p.php": quoted}),
			[]string{"p.php"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		rn, err := core.AnalyzeApp(analysis.NewMapResolver(map[string]string{"p.php": numeric}),
			[]string{"p.php"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rq.Verified() || rn.Verified() {
			b.Fatal("magic-quotes verdicts wrong")
		}
	}
}
